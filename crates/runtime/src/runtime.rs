//! The live coordinator: Up-Down scheduling over real worker threads.
//!
//! [`Runtime`] is a miniature, in-process Condor pool. Worker threads play
//! workstations (with owner-activity flags), jobs are real
//! [`JobProgram`](crate::program::JobProgram) computations, checkpoints are
//! real `condor-ckpt` images held in per-home [`CheckpointStore`]s, and the
//! coordinator is the *same* [`UpDown`] policy the simulator uses —
//! demonstrating that the control plane is independent of the substrate.
//!
//! Timescales shrink (a "2-minute poll" becomes ~20 ms) but every protocol
//! element of the paper is present: polling, queueing at the home station,
//! placement, owner detection between work slices, a grace period,
//! eviction checkpoints, and migration with zero lost results.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use condor_ckpt::image::CheckpointBuilder;
use condor_ckpt::image::SegmentKind;
use condor_ckpt::store::CheckpointStore;
use condor_core::policy::{Order, StationView};
use condor_core::updown::{UpDown, UpDownConfig};
use condor_net::NodeId;
use crossbeam::channel::Receiver;

use crate::worker::{Command, Worker, WorkerEvent};

/// Tunables of the live runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads ("workstations").
    pub workers: usize,
    /// Work units per slice between owner checks.
    pub slice_units: u64,
    /// Coordinator poll interval (the paper's 2 minutes, scaled).
    pub poll_interval: Duration,
    /// Grace period before an interrupted job is evicted (the paper's
    /// 5 minutes, scaled — keep the 2.5× ratio to the poll).
    pub grace: Duration,
    /// Maximum placements per poll (the paper's throttle).
    pub placements_per_poll: usize,
    /// Per-home checkpoint-store capacity in bytes.
    pub store_capacity: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            slice_units: 2_000,
            poll_interval: Duration::from_millis(20),
            grace: Duration::from_millis(50),
            placements_per_poll: 1,
            store_capacity: 64 << 20,
        }
    }
}

/// Where a live job is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveState {
    /// Waiting in the home queue.
    Queued,
    /// Placement command sent; not yet confirmed started.
    Placing {
        /// Destination worker.
        on: usize,
    },
    /// Executing.
    Running {
        /// Hosting worker.
        on: usize,
    },
    /// Owner active at the host; grace clock running.
    Suspended {
        /// Hosting worker.
        on: usize,
    },
    /// Finished.
    Done,
}

#[derive(Debug)]
struct LiveJob {
    home: usize,
    kind: String,
    state: LiveState,
    suspended_at: Option<Instant>,
    evict_sent: bool,
    migrations: u32,
    units_total: u64,
    result: Option<Vec<u8>>,
}

/// Final report of a [`Runtime::run`] call.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Results of completed jobs, by job id.
    pub results: HashMap<u64, Vec<u8>>,
    /// Jobs still unfinished when the deadline hit.
    pub unfinished: Vec<u64>,
    /// Total eviction migrations performed.
    pub migrations: u64,
    /// Owner interruptions observed.
    pub interruptions: u64,
    /// In-place resumes (owner left within the grace period).
    pub resumes_in_place: u64,
    /// Coordinator polls executed.
    pub polls: u64,
    /// Jobs started autonomously on their idle home while the coordinator
    /// flag was down (the hybrid structure's degraded mode).
    pub local_starts: u64,
}

/// A live mini-Condor pool.
///
/// # Examples
///
/// ```
/// use condor_runtime::program::{JobProgram, PrimeCounter};
/// use condor_runtime::runtime::{Runtime, RuntimeConfig};
/// use std::time::Duration;
///
/// let mut rt = Runtime::new(RuntimeConfig { workers: 2, ..RuntimeConfig::default() });
/// let job = rt.submit(0, &PrimeCounter::new(2_000));
/// let report = rt.run(Duration::from_secs(30));
/// assert_eq!(
///     u64::from_le_bytes(report.results[&job].clone().try_into().unwrap()),
///     303, // primes below 2000
/// );
/// ```
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    workers: Vec<Worker>,
    event_rx: Receiver<WorkerEvent>,
    policy: UpDown,
    jobs: HashMap<u64, LiveJob>,
    queues: Vec<VecDeque<u64>>,
    hosting: Vec<Option<u64>>,
    stores: Vec<CheckpointStore>,
    next_job: u64,
    migrations: u64,
    interruptions: u64,
    resumes: u64,
    polls: u64,
    coordinator_down: std::sync::Arc<std::sync::atomic::AtomicBool>,
    local_starts: u64,
}

impl Runtime {
    /// Spawns the worker threads and an idle coordinator.
    ///
    /// # Panics
    ///
    /// Panics on a zero-worker configuration.
    pub fn new(config: RuntimeConfig) -> Runtime {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.placements_per_poll > 0, "placement budget");
        let (event_tx, event_rx) = crossbeam::channel::unbounded();
        let workers: Vec<Worker> = (0..config.workers)
            .map(|i| Worker::spawn(i, config.slice_units, event_tx.clone()))
            .collect();
        let stores = (0..config.workers)
            .map(|_| CheckpointStore::new(config.store_capacity))
            .collect();
        Runtime {
            workers,
            event_rx,
            policy: UpDown::new(UpDownConfig::default()),
            jobs: HashMap::new(),
            queues: vec![VecDeque::new(); config.workers],
            hosting: vec![None; config.workers],
            stores,
            next_job: 0,
            migrations: 0,
            interruptions: 0,
            resumes: 0,
            polls: 0,
            coordinator_down: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
            local_starts: 0,
            config,
        }
    }

    /// Submits a program from `home`'s queue; returns the job id.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range or the home checkpoint store is
    /// full.
    pub fn submit(&mut self, home: usize, program: &dyn crate::program::JobProgram) -> u64 {
        assert!(home < self.config.workers, "home {home} out of range");
        let id = self.next_job;
        self.next_job += 1;
        let snapshot = program.snapshot();
        self.store_snapshot(home, id, 0, &snapshot);
        self.jobs.insert(
            id,
            LiveJob {
                home,
                kind: program.kind().to_string(),
                state: LiveState::Queued,
                suspended_at: None,
                evict_sent: false,
                migrations: 0,
                units_total: 0,
                result: None,
            },
        );
        self.queues[home].push_back(id);
        id
    }

    /// Simulates the owner of worker `station` arriving or leaving.
    ///
    /// # Panics
    ///
    /// Panics if `station` is out of range.
    pub fn set_owner_active(&self, station: usize, active: bool) {
        self.workers[station].set_owner_active(active);
    }

    /// The owner flags of every worker, for an external owner driver.
    pub fn owner_flags(&self) -> Vec<std::sync::Arc<std::sync::atomic::AtomicBool>> {
        self.workers.iter().map(|w| w.owner_flag()).collect()
    }

    /// Takes the coordinator down (`true`) or brings it back (`false`).
    ///
    /// While down, polls stop fleet-wide and stations degrade to autonomy:
    /// an idle, non-hosting worker starts its own queued job locally
    /// instead of waiting for placement — mirroring the simulated
    /// coordinator-outage fault in `condor_core::chaos`.
    pub fn set_coordinator_down(&self, down: bool) {
        self.coordinator_down
            .store(down, std::sync::atomic::Ordering::Relaxed);
    }

    /// The coordinator-down flag, for an external chaos driver (same
    /// pattern as [`Runtime::owner_flags`]).
    pub fn coordinator_flag(&self) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
        self.coordinator_down.clone()
    }

    /// The Up-Down schedule index of a station's home (for inspection).
    pub fn updown_index(&self, station: usize) -> f64 {
        self.policy.index_of(NodeId::new(station as u32))
    }

    fn store_snapshot(&mut self, home: usize, job: u64, sequence: u32, snapshot: &[u8]) {
        let image = CheckpointBuilder::new(job, sequence)
            .segment(SegmentKind::Data, 0, snapshot.to_vec())
            .build()
            .expect("no outstanding replies in the live runtime");
        self.stores[home]
            .put(&image)
            .expect("home checkpoint store full");
    }

    fn fetch_snapshot(&self, home: usize, job: u64) -> Vec<u8> {
        let image = self.stores[home].get(job).expect("snapshot stored at home");
        image
            .segment(SegmentKind::Data)
            .expect("data segment present")
            .payload()
            .to_vec()
    }

    fn drain_events(&mut self) {
        while let Ok(ev) = self.event_rx.try_recv() {
            match ev {
                WorkerEvent::Started { worker, job } => {
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.state = LiveState::Running { on: worker };
                    }
                }
                WorkerEvent::PlaceFailed { worker, job, reason } => {
                    // Snapshot corrupt at the host: requeue from home copy.
                    self.hosting[worker] = None;
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.state = LiveState::Queued;
                        let home = j.home;
                        self.queues[home].push_front(job);
                    }
                    debug_assert!(false, "placement failed: {reason}");
                }
                WorkerEvent::OwnerInterrupted { worker, job } => {
                    self.interruptions += 1;
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.state = LiveState::Suspended { on: worker };
                        j.suspended_at = Some(Instant::now());
                    }
                }
                WorkerEvent::ResumedInPlace { worker, job } => {
                    self.resumes += 1;
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.state = LiveState::Running { on: worker };
                        j.suspended_at = None;
                        j.evict_sent = false;
                    }
                }
                WorkerEvent::Finished { worker, job, result, units_here } => {
                    self.hosting[worker] = None;
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.state = LiveState::Done;
                        j.result = Some(result);
                        j.units_total += units_here;
                        let home = j.home;
                        self.stores[home].remove(job);
                    }
                }
                WorkerEvent::Evicted { worker, job, snapshot, kind: _, units_here } => {
                    self.hosting[worker] = None;
                    self.migrations += 1;
                    let (home, seq) = {
                        let j = self.jobs.get_mut(&job).expect("evicted job known");
                        j.migrations += 1;
                        j.units_total += units_here;
                        j.state = LiveState::Queued;
                        j.suspended_at = None;
                        j.evict_sent = false;
                        (j.home, j.migrations)
                    };
                    self.store_snapshot(home, job, seq, &snapshot);
                    self.queues[home].push_front(job);
                }
                WorkerEvent::Killed { worker, job } => {
                    self.hosting[worker] = None;
                    if let Some(j) = self.jobs.get_mut(&job) {
                        // Restart from the last stored checkpoint.
                        j.state = LiveState::Queued;
                        j.suspended_at = None;
                        j.evict_sent = false;
                        let home = j.home;
                        self.queues[home].push_front(job);
                    }
                }
                WorkerEvent::CommandMiss { .. } => {}
            }
        }
    }

    fn enforce_grace(&mut self) {
        let grace = self.config.grace;
        let mut evictions: Vec<(usize, u64)> = Vec::new();
        for (&id, j) in &mut self.jobs {
            if let LiveState::Suspended { on } = j.state {
                if !j.evict_sent
                    && j.suspended_at.is_some_and(|t| t.elapsed() >= grace)
                {
                    j.evict_sent = true;
                    evictions.push((on, id));
                }
            }
        }
        for (worker, job) in evictions {
            self.workers[worker].send(Command::Evict { job });
        }
    }

    /// Degraded-mode scheduling while the coordinator is down: each idle,
    /// non-hosting worker starts the next job of its *own* queue. No
    /// cross-station placement and no policy charge — autonomy, not
    /// allocation.
    fn autonomy_sweep(&mut self) {
        for i in 0..self.config.workers {
            if self.workers[i].owner_active() || self.hosting[i].is_some() {
                continue;
            }
            let Some(job) = self.queues[i].pop_front() else {
                continue;
            };
            let snapshot = self.fetch_snapshot(i, job);
            let kind = self.jobs[&job].kind.clone();
            self.hosting[i] = Some(job);
            if let Some(j) = self.jobs.get_mut(&job) {
                j.state = LiveState::Placing { on: i };
            }
            self.local_starts += 1;
            self.workers[i].send(Command::Place { job, kind, snapshot });
        }
    }

    fn poll(&mut self) {
        self.polls += 1;
        let views: Vec<StationView> = (0..self.config.workers)
            .map(|i| StationView {
                node: NodeId::new(i as u32),
                can_host: !self.workers[i].owner_active() && self.hosting[i].is_none(),
                free_cpu_milli: if !self.workers[i].owner_active() && self.hosting[i].is_none() {
                    1000
                } else {
                    0
                },
                hosting_for: self.hosting[i].and_then(|job| {
                    let j = &self.jobs[&job];
                    matches!(j.state, LiveState::Running { .. })
                        .then(|| NodeId::new(j.home as u32))
                }),
                waiting_jobs: self.queues[i].len(),
            })
            .collect();
        let free: Vec<NodeId> = views.iter().filter(|v| v.can_host).map(|v| v.node).collect();
        let orders = condor_core::policy::decide_from_views(
            &mut self.policy,
            Default::default(),
            &views,
            &free,
            self.config.placements_per_poll,
        );
        for order in orders {
            match order {
                Order::Assign { home, target } => {
                    let Some(job) = self.queues[home.as_usize()].pop_front() else {
                        continue;
                    };
                    let snapshot = self.fetch_snapshot(home.as_usize(), job);
                    let kind = self.jobs[&job].kind.clone();
                    self.hosting[target.as_usize()] = Some(job);
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.state = LiveState::Placing { on: target.as_usize() };
                    }
                    self.workers[target.as_usize()].send(Command::Place { job, kind, snapshot });
                }
                Order::Preempt { target } => {
                    if let Some(job) = self.hosting[target.as_usize()] {
                        self.workers[target.as_usize()].send(Command::Evict { job });
                    }
                }
            }
        }
    }

    /// Drives the pool until every submitted job completes or `deadline`
    /// elapses, then reports. Owner flags may be toggled concurrently from
    /// other threads (or between `run` calls).
    pub fn run(&mut self, deadline: Duration) -> RuntimeReport {
        let started = Instant::now();
        let mut last_poll = Instant::now() - self.config.poll_interval;
        while started.elapsed() < deadline {
            self.drain_events();
            self.enforce_grace();
            if last_poll.elapsed() >= self.config.poll_interval {
                last_poll = Instant::now();
                if self.coordinator_down.load(std::sync::atomic::Ordering::Relaxed) {
                    self.autonomy_sweep();
                } else {
                    self.poll();
                }
            }
            if self.jobs.values().all(|j| j.state == LiveState::Done) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.drain_events();
        let mut results = HashMap::new();
        let mut unfinished = Vec::new();
        for (&id, j) in &self.jobs {
            match (&j.state, &j.result) {
                (LiveState::Done, Some(r)) => {
                    results.insert(id, r.clone());
                }
                _ => unfinished.push(id),
            }
        }
        unfinished.sort_unstable();
        RuntimeReport {
            results,
            unfinished,
            migrations: self.migrations,
            interruptions: self.interruptions,
            resumes_in_place: self.resumes,
            polls: self.polls,
            local_starts: self.local_starts,
        }
    }

    /// Stops all workers and returns the total units they executed.
    pub fn shutdown(self) -> u64 {
        self.workers.into_iter().map(Worker::shutdown).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{run_to_completion, MonteCarloPi, PrimeCounter, SeriesSum};

    fn fast_config(workers: usize) -> RuntimeConfig {
        RuntimeConfig {
            workers,
            slice_units: 500,
            poll_interval: Duration::from_millis(5),
            grace: Duration::from_millis(15),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut rt = Runtime::new(fast_config(2));
        let job = rt.submit(0, &PrimeCounter::new(3_000));
        let report = rt.run(Duration::from_secs(30));
        assert!(report.unfinished.is_empty(), "{report:?}");
        let expected = run_to_completion(&mut PrimeCounter::new(3_000));
        assert_eq!(report.results[&job], expected);
        assert!(rt.shutdown() > 0);
    }

    #[test]
    fn many_jobs_from_many_homes_all_complete() {
        let mut rt = Runtime::new(fast_config(4));
        let mut expected = HashMap::new();
        for i in 0..8u64 {
            let prog = SeriesSum::new(200_000 + i * 10_000, 1_000_003);
            let want = {
                let mut p = prog.clone();
                run_to_completion(&mut p)
            };
            let id = rt.submit((i % 4) as usize, &prog);
            expected.insert(id, want);
        }
        let report = rt.run(Duration::from_secs(60));
        assert!(report.unfinished.is_empty(), "{report:?}");
        for (id, want) in expected {
            assert_eq!(report.results[&id], want, "job {id}");
        }
        rt.shutdown();
    }

    #[test]
    fn owner_interference_migrates_without_corrupting_results() {
        let mut rt = Runtime::new(fast_config(3));
        // Long-ish stochastic job: the RNG stream must survive migration.
        let prog = MonteCarloPi::new(42, 40_000_000);
        let expected = {
            let mut p = prog.clone();
            run_to_completion(&mut p)
        };
        let job = rt.submit(0, &prog);
        // Harass whichever machines host it: flip owners on and off.
        let flip = |rt: &Runtime, on: bool| {
            for w in 0..3 {
                rt.set_owner_active(w, on && w != 0);
            }
        };
        let mut report = None;
        for round in 0..200 {
            flip(&rt, round % 2 == 0);
            let r = rt.run(Duration::from_millis(100));
            if r.unfinished.is_empty() {
                report = Some(r);
                break;
            }
        }
        // Clear owners and finish if still pending.
        flip(&rt, false);
        let report = match report {
            Some(r) => r,
            None => rt.run(Duration::from_secs(120)),
        };
        assert!(report.unfinished.is_empty(), "{report:?}");
        assert_eq!(report.results[&job], expected, "result corrupted by migration");
        rt.shutdown();
    }

    #[test]
    fn grace_period_evicts_persistently_busy_station() {
        let mut rt = Runtime::new(RuntimeConfig {
            workers: 2,
            slice_units: 200,
            poll_interval: Duration::from_millis(5),
            grace: Duration::from_millis(10),
            ..RuntimeConfig::default()
        });
        let prog = SeriesSum::new(u64::MAX / 4, 1_000_003); // effectively endless
        let _job = rt.submit(0, &prog);
        // Let it get placed and start.
        let _ = rt.run(Duration::from_millis(200));
        // Make every station busy: the job gets interrupted, grace expires,
        // and an eviction checkpoint happens.
        rt.set_owner_active(0, true);
        rt.set_owner_active(1, true);
        let _ = rt.run(Duration::from_millis(300));
        assert!(rt.migrations >= 1 || rt.interruptions >= 1, "no interference observed");
        rt.set_owner_active(0, false);
        rt.set_owner_active(1, false);
        rt.shutdown();
    }

    #[test]
    fn coordinator_outage_degrades_to_autonomous_local_starts() {
        let mut rt = Runtime::new(fast_config(2));
        rt.set_coordinator_down(true);
        let job = rt.submit(0, &PrimeCounter::new(3_000));
        let report = rt.run(Duration::from_secs(30));
        assert!(report.unfinished.is_empty(), "{report:?}");
        assert_eq!(report.polls, 0, "polls while the coordinator is down");
        assert!(report.local_starts >= 1, "{report:?}");
        let expected = run_to_completion(&mut PrimeCounter::new(3_000));
        assert_eq!(report.results[&job], expected);
        // Recovery: polls resume and placement works normally again.
        rt.set_coordinator_down(false);
        let job2 = rt.submit(1, &PrimeCounter::new(2_000));
        let report = rt.run(Duration::from_secs(30));
        assert!(report.unfinished.is_empty(), "{report:?}");
        assert!(report.polls > 0, "polls must resume after recovery");
        assert_eq!(
            report.results[&job2],
            run_to_completion(&mut PrimeCounter::new(2_000))
        );
        rt.shutdown();
    }

    #[test]
    fn updown_index_rises_for_consuming_home() {
        let mut rt = Runtime::new(fast_config(3));
        let _ = rt.submit(0, &SeriesSum::new(500_000_000, 1_000_003));
        let _ = rt.run(Duration::from_millis(300));
        assert!(
            rt.updown_index(0) > 0.0,
            "home 0 is consuming remote capacity, index {}",
            rt.updown_index(0)
        );
        rt.shutdown();
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use crate::program::SeriesSum;

    /// The live Up-Down coordinator preempts a monopolising home for a
    /// newcomer, just like the simulator.
    #[test]
    fn live_updown_preempts_for_the_light_home() {
        let mut rt = Runtime::new(RuntimeConfig {
            workers: 3,
            slice_units: 300,
            poll_interval: Duration::from_millis(5),
            grace: Duration::from_millis(15),
            ..RuntimeConfig::default()
        });
        // Heavy home 0 floods: effectively endless jobs on every machine.
        for _ in 0..6 {
            rt.submit(0, &SeriesSum::new(u64::MAX / 4, 1_000_003));
        }
        // Let the flood soak up the pool and build up home 0's index.
        let _ = rt.run(Duration::from_millis(400));
        assert!(rt.updown_index(0) > 0.0, "heavy home must accumulate index");
        // The light home asks for a short job.
        let light = rt.submit(1, &SeriesSum::new(2_000_000, 1_000_003));
        let mut done = false;
        for _ in 0..100 {
            let r = rt.run(Duration::from_millis(100));
            if r.results.contains_key(&light) {
                done = true;
                break;
            }
        }
        assert!(done, "the light home's job must run despite the flood");
        assert!(
            rt.migrations > 0,
            "serving the light job requires preempting the flood: migrations {}",
            rt.migrations
        );
        rt.shutdown();
    }
}
