//! The shared-medium network model.
//!
//! A [`SharedBus`] answers one question for the scheduler: *if I start this
//! transfer now, when does it complete?* Bulk transfers (checkpoint images,
//! job placements) serialise FIFO on the medium; control messages (polls,
//! status replies, preemption orders) see only propagation latency because
//! their few hundred bytes are negligible next to megabyte images.
//!
//! The model is deliberately coarse — Condor's behaviour depends on
//! transfer *duration* and *serialisation*, not on CSMA/CD micro-dynamics —
//! but it is conservative in the right direction: concurrent image moves
//! slow each other down, which is exactly the effect that motivated the
//! paper's one-placement-per-two-minutes throttle.

use condor_sim::time::{SimDuration, SimTime};

use crate::node::NodeId;

/// Static parameters of the shared medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Sustained payload bandwidth in bytes per second. The default models
    /// 10 Mbit/s Ethernet at ~60% goodput: 750 kB/s.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way latency for a control message.
    pub control_latency: SimDuration,
    /// Fixed per-transfer setup overhead (connection establishment,
    /// process-creation on the serving side).
    pub transfer_setup: SimDuration,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            bandwidth_bytes_per_sec: 750_000,
            control_latency: SimDuration::from_millis(5),
            transfer_setup: SimDuration::from_millis(200),
        }
    }
}

impl BusConfig {
    /// Pure transmission time for `bytes` at the configured bandwidth
    /// (excluding setup).
    pub fn transmission_time(&self, bytes: u64) -> SimDuration {
        assert!(self.bandwidth_bytes_per_sec > 0, "zero bandwidth");
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

/// A completed transfer booking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the transfer starts occupying the medium (may be later than the
    /// request time if the bus is busy).
    pub starts_at: SimTime,
    /// When the last byte arrives.
    pub completes_at: SimTime,
}

impl Transfer {
    /// Total time from request to completion, including queueing.
    pub fn total_duration(&self, requested_at: SimTime) -> SimDuration {
        self.completes_at.saturating_since(requested_at)
    }
}

/// The shared network medium. All bulk transfers serialise through it.
///
/// # Examples
///
/// ```
/// use condor_net::{BusConfig, NodeId, SharedBus};
/// use condor_sim::time::SimTime;
///
/// let mut bus = SharedBus::new(BusConfig::default());
/// let t0 = SimTime::ZERO;
/// let a = bus.book_transfer(t0, NodeId::new(0), NodeId::new(1), 500_000);
/// let b = bus.book_transfer(t0, NodeId::new(2), NodeId::new(3), 500_000);
/// // The second transfer waits for the first to clear the medium.
/// assert!(b.starts_at >= a.completes_at);
/// ```
#[derive(Debug, Clone)]
pub struct SharedBus {
    config: BusConfig,
    busy_until: SimTime,
    transfers_booked: u64,
    bytes_moved: u64,
    control_messages: u64,
    /// Cumulative time the medium spent occupied by bulk transfers.
    busy_time: SimDuration,
    /// Start of the current (latest) contiguous busy run. Bookings that
    /// find the medium free open a new run; bookings that queue extend
    /// it. Lets [`SharedBus::utilization`] clamp the not-yet-elapsed
    /// overhang to the run it actually belongs to.
    run_start: SimTime,
}

impl SharedBus {
    /// Creates an idle bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        SharedBus {
            config,
            busy_until: SimTime::ZERO,
            transfers_booked: 0,
            bytes_moved: 0,
            control_messages: 0,
            busy_time: SimDuration::ZERO,
            run_start: SimTime::ZERO,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Books a bulk transfer of `bytes` from `from` to `to`, requested at
    /// `now`. The transfer begins when the medium frees up and occupies it
    /// for setup + transmission; the returned booking says when the payload
    /// lands.
    pub fn book_transfer(&mut self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> Transfer {
        let starts_at = self.busy_until.max(now);
        if starts_at > self.busy_until {
            // The medium was idle: this booking opens a new busy run.
            self.run_start = starts_at;
        }
        let occupies = self.config.transfer_setup + self.config.transmission_time(bytes);
        let completes_at = starts_at + occupies;
        self.busy_until = completes_at;
        self.transfers_booked += 1;
        self.bytes_moved += bytes;
        self.busy_time += occupies;
        Transfer {
            from,
            to,
            bytes,
            starts_at,
            completes_at,
        }
    }

    /// Delivery time of a small control message sent at `now`. Control
    /// traffic does not occupy the medium in this model.
    pub fn control_delivery(&mut self, now: SimTime) -> SimTime {
        self.control_messages += 1;
        now + self.config.control_latency
    }

    /// When the medium next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether a transfer booked at `now` would start immediately.
    pub fn is_free_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// How long a transfer booked at `now` would wait before starting:
    /// the time until the medium frees, zero when it already is.
    ///
    /// The medium is a single FIFO track that never backfills: a booking
    /// always starts at [`SharedBus::busy_until`], even if requested
    /// during an idle gap *before* the latest booking was made. A query
    /// with `now` earlier than that booking therefore reports the full
    /// wait such a booking would really experience — idle gap included —
    /// not just the transmission time queued ahead of it.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Total bulk transfers booked.
    pub fn transfers_booked(&self) -> u64 {
        self.transfers_booked
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total control messages carried.
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Cumulative time the medium has been occupied by bulk transfers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Medium utilisation over `[SimTime::ZERO, now]` as a fraction.
    ///
    /// Exact for any `now` at or after the start of the latest busy run
    /// (in particular, for every monotone probe), and for any `now` in
    /// the idle gap just before it. For `now` earlier still — inside or
    /// before an already-completed busy run — the answer counts that
    /// whole run as elapsed and is an upper bound: per-run history is
    /// not retained.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        // The latest busy run [run_start, busy_until] is contiguous, so
        // the portion after `now` — the overhang — is pure busy time and
        // can be subtracted from the cumulative total. Clamping to
        // run_start keeps an idle gap before the run (when `now`
        // precedes the last booking) out of the subtraction.
        let overhang = self.busy_until.saturating_since(now.max(self.run_start));
        let elapsed_busy = self.busy_time.saturating_sub(overhang);
        elapsed_busy.as_millis() as f64 / now.as_millis() as f64
    }
}

/// The inter-pool link model: point-to-point control links between pool
/// coordinators, separate from the intra-pool [`SharedBus`].
///
/// Every cross-pool message — a forwarded job, a checkpoint transfer, a
/// control message — rides one of these links and arrives no earlier than
/// the link latency. [`PoolLinks::min_latency`] is therefore a sound
/// *lookahead* bound for conservative space-parallel simulation: a shard
/// may advance `min_latency` past the last synchronisation point without
/// risk of receiving an event from another pool's past.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolLinks {
    pools: usize,
    latency: SimDuration,
}

impl PoolLinks {
    /// A fully connected mesh of `pools` pools with one uniform one-way
    /// latency on every link.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is zero or `latency` is zero (a zero-latency
    /// link would make the conservative lookahead window empty).
    pub fn uniform(pools: usize, latency: SimDuration) -> Self {
        assert!(pools > 0, "a pool mesh needs at least one pool");
        assert!(!latency.is_zero(), "zero inter-pool latency gives no lookahead");
        PoolLinks { pools, latency }
    }

    /// Number of pools in the mesh.
    pub fn pools(&self) -> usize {
        self.pools
    }

    /// One-way latency from pool `from` to pool `to`; zero within a pool.
    ///
    /// # Panics
    ///
    /// Panics if either pool index is out of range.
    pub fn latency(&self, from: usize, to: usize) -> SimDuration {
        assert!(from < self.pools && to < self.pools, "pool index out of range");
        if from == to {
            SimDuration::ZERO
        } else {
            self.latency
        }
    }

    /// The smallest latency on any *inter*-pool link — the lower bound a
    /// conservative windowed simulation may use as its lookahead.
    pub fn min_latency(&self) -> SimDuration {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> SharedBus {
        SharedBus::new(BusConfig::default())
    }

    #[test]
    fn transmission_time_scales_with_size() {
        let cfg = BusConfig::default();
        // 750 kB at 750 kB/s = 1 s.
        assert_eq!(cfg.transmission_time(750_000), SimDuration::from_secs(1));
        assert_eq!(cfg.transmission_time(0), SimDuration::ZERO);
        assert_eq!(cfg.transmission_time(375_000), SimDuration::from_millis(500));
    }

    #[test]
    fn single_transfer_timing() {
        let mut b = bus();
        let t = b.book_transfer(SimTime::from_secs(10), NodeId::new(0), NodeId::new(1), 750_000);
        assert_eq!(t.starts_at, SimTime::from_secs(10));
        // setup 200 ms + 1 s transmission.
        assert_eq!(t.completes_at, SimTime::from_millis(11_200));
        assert_eq!(t.total_duration(SimTime::from_secs(10)), SimDuration::from_millis(1_200));
        assert_eq!(b.bytes_moved(), 750_000);
        assert_eq!(b.transfers_booked(), 1);
    }

    #[test]
    fn concurrent_transfers_serialize_fifo() {
        let mut b = bus();
        let t0 = SimTime::ZERO;
        let first = b.book_transfer(t0, NodeId::new(0), NodeId::new(1), 750_000);
        let second = b.book_transfer(t0, NodeId::new(2), NodeId::new(3), 750_000);
        let third = b.book_transfer(t0, NodeId::new(4), NodeId::new(5), 750_000);
        assert_eq!(second.starts_at, first.completes_at);
        assert_eq!(third.starts_at, second.completes_at);
        assert_eq!(b.busy_until(), third.completes_at);
    }

    #[test]
    fn bus_frees_up_between_spaced_transfers() {
        let mut b = bus();
        let first = b.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 100_000);
        assert!(b.is_free_at(SimTime::from_hours(1)));
        let second = b.book_transfer(SimTime::from_hours(1), NodeId::new(1), NodeId::new(0), 100_000);
        assert_eq!(second.starts_at, SimTime::from_hours(1));
        assert!(second.starts_at > first.completes_at);
    }

    #[test]
    fn control_messages_bypass_queue() {
        let mut b = bus();
        b.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 10_000_000);
        // Even with a huge transfer in flight, control mail flows.
        let delivered = b.control_delivery(SimTime::from_millis(1));
        assert_eq!(delivered, SimTime::from_millis(6));
        assert_eq!(b.control_messages(), 1);
    }

    #[test]
    fn utilization_fraction() {
        let mut b = bus();
        // Occupies 1.2 s of the first 12 s.
        b.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 750_000);
        let u = b.utilization(SimTime::from_secs(12));
        assert!((u - 0.1).abs() < 1e-9, "utilization {u}");
        assert_eq!(b.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_excludes_future_overhang() {
        let mut b = bus();
        b.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 7_500_000); // ~10.2 s
        // At t=5 s the transfer is still running; only 5 s of busy counts.
        let u = b.utilization(SimTime::from_secs(5));
        assert!((u - 1.0).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn utilization_is_exact_across_an_idle_gap() {
        let mut b = bus();
        // Run one: [0, 1.2 s]. Run two: [10, 11.2 s].
        b.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 750_000);
        b.book_transfer(SimTime::from_secs(10), NodeId::new(2), NodeId::new(3), 750_000);
        // Query inside the gap, before the last booking: only the first
        // run has elapsed. The naive overhang subtraction would report 0.
        let u = b.utilization(SimTime::from_secs(5));
        assert!((u - 1.2 / 5.0).abs() < 1e-9, "utilization {u}");
        // Query inside the second run: the gap stays excluded.
        let u = b.utilization(SimTime::from_millis(10_600));
        assert!((u - 1.8 / 10.6).abs() < 1e-9, "utilization {u}");
        // Query after both runs: the full 2.4 s counts.
        let u = b.utilization(SimTime::from_secs(12));
        assert!((u - 2.4 / 12.0).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn backlog_before_last_booking_reports_the_real_wait() {
        let mut b = bus();
        b.book_transfer(SimTime::from_secs(10), NodeId::new(0), NodeId::new(1), 750_000);
        // The medium never backfills: a booking requested at 5 s would
        // still start at busy_until (11.2 s), so the reported backlog is
        // that full wait, idle gap included.
        assert_eq!(b.backlog_at(SimTime::from_secs(5)), SimDuration::from_millis(6_200));
        assert_eq!(b.backlog_at(SimTime::from_millis(11_200)), SimDuration::ZERO);
    }

    #[test]
    fn pool_links_give_uniform_lookahead() {
        let links = PoolLinks::uniform(4, SimDuration::from_secs(30));
        assert_eq!(links.pools(), 4);
        assert_eq!(links.latency(0, 0), SimDuration::ZERO);
        assert_eq!(links.latency(0, 3), SimDuration::from_secs(30));
        assert_eq!(links.min_latency(), SimDuration::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "no lookahead")]
    fn zero_latency_links_are_rejected() {
        let _ = PoolLinks::uniform(2, SimDuration::ZERO);
    }

    #[test]
    fn paper_image_transfer_takes_seconds() {
        // A half-megabyte checkpoint (the paper's observed average) should
        // take on the order of a second on period hardware — the medium is
        // not the 5 s/MB bottleneck; the end-host copying is (see
        // condor-model's cost model).
        let mut b = bus();
        let t = b.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 500_000);
        let d = t.total_duration(SimTime::ZERO);
        assert!(d >= SimDuration::from_millis(500) && d <= SimDuration::from_secs(2), "{d}");
    }
}
