//! Node identities on the simulated network.

use std::fmt;

/// Identifies one workstation on the LAN.
///
/// Plain index newtype: workstations are dense and created once at cluster
/// construction, so an index into the cluster's station table is the natural
/// identity.
///
/// # Examples
///
/// ```
/// use condor_net::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "ws03");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense station index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The underlying station index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Usable as a `usize` index into per-station tables.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ws{:02}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.as_usize(), 7);
        assert_eq!(NodeId::from(7u32), n);
    }

    #[test]
    fn display_pads_small_indices() {
        assert_eq!(NodeId::new(0).to_string(), "ws00");
        assert_eq!(NodeId::new(23).to_string(), "ws23");
        assert_eq!(NodeId::new(123).to_string(), "ws123");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        let mut v = vec![NodeId::new(5), NodeId::new(1), NodeId::new(3)];
        v.sort();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
    }
}
