//! # condor-net — a simulated departmental LAN
//!
//! Condor's 1988 testbed hung 23 VAXstations off a shared 10 Mbit/s
//! Ethernet. Two properties of that network matter to the scheduler:
//!
//! 1. **Control messages are cheap but not free** — coordinator polls and
//!    status replies see per-message latency;
//! 2. **Checkpoint/placement transfers are serialised and slow** — moving a
//!    half-megabyte image takes real seconds and competes for the shared
//!    medium, which is why Condor throttles itself to one placement per two
//!    minutes (paper §4).
//!
//! [`SharedBus`] models the medium: each bulk transfer occupies the bus for
//! `setup + size/bandwidth`, transfers queue FIFO, and small control
//! messages bypass the queue with pure latency (they are negligible against
//! megabyte images). Everything is deterministic — the same request
//! sequence produces the same delivery times.
//!
//! ## Example
//!
//! ```
//! use condor_net::{BusConfig, NodeId, SharedBus};
//! use condor_sim::time::SimTime;
//!
//! let mut bus = SharedBus::new(BusConfig::default());
//! let booking = bus.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(5), 500_000);
//! assert!(booking.completes_at > SimTime::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod node;

pub use bus::{BusConfig, PoolLinks, SharedBus, Transfer};
pub use node::NodeId;
