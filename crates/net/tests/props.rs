//! Property tests for the shared-medium network model.

use condor_net::{BusConfig, NodeId, SharedBus};
use condor_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Transfers never overlap on the medium, always start at or after
    /// their request, and complete after they start.
    #[test]
    fn transfers_serialize_without_overlap(
        requests in prop::collection::vec((0u64..100_000, 1u64..5_000_000), 1..60),
    ) {
        let mut bus = SharedBus::new(BusConfig::default());
        let mut requests = requests;
        requests.sort_by_key(|r| r.0); // callers book in time order
        let mut prev_end = SimTime::ZERO;
        for (at_ms, bytes) in requests {
            let now = SimTime::from_millis(at_ms);
            let t = bus.book_transfer(now, NodeId::new(0), NodeId::new(1), bytes);
            prop_assert!(t.starts_at >= now, "transfer started before request");
            prop_assert!(t.starts_at >= prev_end, "transfers overlap");
            prop_assert!(t.completes_at > t.starts_at);
            prev_end = t.completes_at;
        }
    }

    /// Transfer duration is monotone in payload size and linear at the
    /// configured bandwidth.
    #[test]
    fn duration_is_linear_in_size(bytes in 1u64..10_000_000) {
        let cfg = BusConfig::default();
        let t1 = cfg.transmission_time(bytes);
        let t2 = cfg.transmission_time(bytes * 2);
        // Within rounding, doubling bytes doubles time.
        let ratio = t2.as_millis() as f64 / t1.as_millis().max(1) as f64;
        prop_assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    /// Accounting: bytes_moved and transfers_booked track every booking,
    /// and busy_time equals the sum of occupation spans.
    #[test]
    fn accounting_is_exact(
        sizes in prop::collection::vec(1u64..2_000_000, 1..40),
    ) {
        let mut bus = SharedBus::new(BusConfig::default());
        let mut expect_busy = SimDuration::ZERO;
        for (i, &bytes) in sizes.iter().enumerate() {
            let t = bus.book_transfer(
                SimTime::from_secs(i as u64),
                NodeId::new(0),
                NodeId::new(1),
                bytes,
            );
            expect_busy += t.completes_at.since(t.starts_at);
        }
        prop_assert_eq!(bus.transfers_booked(), sizes.len() as u64);
        prop_assert_eq!(bus.bytes_moved(), sizes.iter().sum::<u64>());
        prop_assert_eq!(bus.busy_time(), expect_busy);
    }

    /// Utilization is always in [0, 1].
    #[test]
    fn utilization_is_a_fraction(
        sizes in prop::collection::vec(1u64..5_000_000, 0..30),
        horizon_s in 1u64..100_000,
    ) {
        let mut bus = SharedBus::new(BusConfig::default());
        for &bytes in &sizes {
            bus.book_transfer(SimTime::ZERO, NodeId::new(0), NodeId::new(1), bytes);
        }
        let u = bus.utilization(SimTime::from_secs(horizon_s));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
    }
}
