//! # condor-model — workstations, owners, and costs
//!
//! The environmental models under the Condor scheduler:
//!
//! * [`costs`] — every measured constant from the paper (2-minute polls,
//!   30-second owner checks, 5-minute eviction grace, 5 s/MB image moves,
//!   10 ms remote system calls, …) in one [`costs::CostModel`];
//! * [`diurnal`] — weekly activity profiles (afternoon peaks, quiet nights
//!   and weekends) matching the utilization shapes of Figures 5–6;
//! * [`owner`] — the stochastic owner-activity process with regime
//!   persistence (long available intervals follow long ones, per the
//!   paper's companion study) and per-station heterogeneity;
//! * [`station`] — static hardware profiles (CPU speed factor, disk space
//!   for foreign images).
//!
//! ## Example
//!
//! ```
//! use condor_model::costs::CostModel;
//! use condor_model::owner::{build_fleet, OwnerConfig};
//!
//! let costs = CostModel::default();
//! // Half-megabyte image → 2.5 s of local CPU per move, like the paper.
//! assert_eq!(costs.transfer_cpu_cost(500_000).as_millis(), 2_500);
//!
//! // 23 stations with heterogeneous owners, deterministic in the seed.
//! let fleet = build_fleet(23, &OwnerConfig::default(), 0.4, 1988);
//! assert_eq!(fleet.len(), 23);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod costs;
pub mod diurnal;
pub mod owner;
pub mod station;

pub use costs::{CostModel, MEGABYTE};
pub use diurnal::DiurnalProfile;
pub use owner::{build_fleet, OwnerConfig, OwnerProcess, OwnerState};
pub use station::{Arch, ArchSet, StationProfile};
