//! The owner-activity process: when is a workstation's owner at the keyboard?
//!
//! Each station alternates between **Active** (owner using it — Condor must
//! stay away) and **Idle** (available as a cycle server). The process has
//! three structural features taken from the paper and its companion study
//! (Mutka & Livny, *Profiling Workstations' Available Capacity*, ref. \[1\]):
//!
//! 1. **Diurnal/weekly modulation** — the probability of being active
//!    follows a [`DiurnalProfile`] (afternoon peaks, quiet nights and
//!    weekends), realised by stretching idle periods when target activity
//!    is low;
//! 2. **Regime persistence** — stations that just had a long available
//!    interval tend to have another long one (and vice versa). A latent
//!    two-state regime (Long/Short) persists across intervals with
//!    configurable probability, multiplying idle durations by reciprocal
//!    factors so the *mean* stays on target while autocorrelation appears;
//! 3. **Station heterogeneity** — owners differ; each station carries an
//!    `activity_scale` so some machines are habitually busier than others.

use condor_sim::rng::SimRng;
use condor_sim::time::{SimDuration, SimTime};

use crate::diurnal::DiurnalProfile;

/// Whether the owner is using the workstation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerState {
    /// The owner is at the keyboard; no foreign job may run.
    Active,
    /// The station is idle and available as a source of remote cycles.
    Idle,
}

impl OwnerState {
    /// The other state.
    pub fn flipped(self) -> OwnerState {
        match self {
            OwnerState::Active => OwnerState::Idle,
            OwnerState::Idle => OwnerState::Active,
        }
    }
}

/// Latent availability regime (paper ref. \[1\]: interval lengths are
/// positively autocorrelated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Long,
    Short,
}

/// Parameters of the owner-activity process.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnerConfig {
    /// Weekly activity-level profile.
    pub profile: DiurnalProfile,
    /// Mean length of one active (owner-present) period.
    pub mean_active_period: SimDuration,
    /// Probability that the availability regime persists from one idle
    /// interval to the next (0.5 = no correlation).
    pub regime_persistence: f64,
    /// Idle-duration multiplier in the Long regime; the Short regime uses
    /// `2 - long_factor` so the expected multiplier is 1.
    pub long_regime_factor: f64,
    /// Per-station multiplier on the profile's activity level (1.0 =
    /// typical owner; busier owners > 1).
    pub activity_scale: f64,
}

impl Default for OwnerConfig {
    fn default() -> Self {
        OwnerConfig {
            profile: DiurnalProfile::paper_department(),
            mean_active_period: SimDuration::from_minutes(30),
            regime_persistence: 0.8,
            long_regime_factor: 1.6,
            activity_scale: 1.0,
        }
    }
}

impl OwnerConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.regime_persistence),
            "regime persistence {} outside [0, 1]",
            self.regime_persistence
        );
        assert!(
            (1.0..2.0).contains(&self.long_regime_factor),
            "long regime factor {} outside [1, 2)",
            self.long_regime_factor
        );
        assert!(
            self.activity_scale > 0.0 && self.activity_scale.is_finite(),
            "bad activity scale {}",
            self.activity_scale
        );
        assert!(!self.mean_active_period.is_zero(), "zero active period");
    }
}

/// One station's owner, stepped by the cluster simulation.
///
/// # Examples
///
/// ```
/// use condor_model::owner::{OwnerConfig, OwnerProcess, OwnerState};
/// use condor_sim::rng::SimRng;
/// use condor_sim::time::SimTime;
///
/// let mut rng = SimRng::seed_from(1);
/// let mut owner = OwnerProcess::new(OwnerConfig::default(), &mut rng);
/// let dwell = owner.dwell_and_flip(SimTime::ZERO, &mut rng);
/// assert!(!dwell.is_zero());
/// ```
#[derive(Debug, Clone)]
pub struct OwnerProcess {
    config: OwnerConfig,
    state: OwnerState,
    regime: Regime,
}

impl OwnerProcess {
    /// Creates the process, drawing the initial state from the profile's
    /// level at time zero.
    pub fn new(config: OwnerConfig, rng: &mut SimRng) -> Self {
        config.validate();
        let a = Self::effective_activity(&config, SimTime::ZERO);
        let state = if rng.chance(a) {
            OwnerState::Active
        } else {
            OwnerState::Idle
        };
        let regime = if rng.chance(0.5) { Regime::Long } else { Regime::Short };
        OwnerProcess {
            config,
            state,
            regime,
        }
    }

    /// The current state.
    pub fn state(&self) -> OwnerState {
        self.state
    }

    /// The configuration in force.
    pub fn config(&self) -> &OwnerConfig {
        &self.config
    }

    fn effective_activity(config: &OwnerConfig, now: SimTime) -> f64 {
        (config.profile.level_at(now) * config.activity_scale).clamp(0.005, 0.95)
    }

    /// Draws how long the *current* state lasts starting at `now`, then
    /// flips into the next state. The caller schedules the transition event
    /// `dwell` in the future.
    pub fn dwell_and_flip(&mut self, now: SimTime, rng: &mut SimRng) -> SimDuration {
        let a = Self::effective_activity(&self.config, now);
        let mean_active_s = self.config.mean_active_period.as_secs_f64();
        let dwell_s = match self.state {
            OwnerState::Active => rng.exponential(mean_active_s),
            OwnerState::Idle => {
                // Possibly switch regime, then stretch/shrink the idle
                // interval by the regime factor.
                if !rng.chance(self.config.regime_persistence) {
                    self.regime = match self.regime {
                        Regime::Long => Regime::Short,
                        Regime::Short => Regime::Long,
                    };
                }
                let factor = match self.regime {
                    Regime::Long => self.config.long_regime_factor,
                    Regime::Short => 2.0 - self.config.long_regime_factor,
                };
                // Stationary activity = active / (active + idle) = a
                // → mean idle = mean_active · (1 − a)/a.
                let mean_idle_s = mean_active_s * (1.0 - a) / a;
                rng.exponential(mean_idle_s * factor)
            }
        };
        self.state = self.state.flipped();
        // At least one millisecond so transition events always advance time.
        SimDuration::from_secs_f64(dwell_s).max(SimDuration::MILLISECOND)
    }
}

/// Builds a heterogeneous fleet of owner processes with per-station
/// substreams, so adding stations never perturbs existing ones.
///
/// Station activity scales are spread uniformly over
/// `[1 − spread, 1 + spread]`.
pub fn build_fleet(
    n: usize,
    base: &OwnerConfig,
    heterogeneity_spread: f64,
    seed: u64,
) -> Vec<OwnerProcess> {
    assert!(
        (0.0..1.0).contains(&heterogeneity_spread),
        "spread {heterogeneity_spread} outside [0, 1)"
    );
    let root = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let mut rng = root.substream(seed, &format!("owner-{i}"));
            let scale = if heterogeneity_spread == 0.0 {
                1.0
            } else {
                rng.uniform_range_f64(1.0 - heterogeneity_spread, 1.0 + heterogeneity_spread)
            };
            let cfg = OwnerConfig {
                activity_scale: base.activity_scale * scale,
                ..base.clone()
            };
            OwnerProcess::new(cfg, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate one owner for `horizon` and return the fraction of time
    /// spent Active.
    fn active_fraction(config: OwnerConfig, seed: u64, horizon: SimDuration) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        let mut p = OwnerProcess::new(config, &mut rng);
        let mut now = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut active = SimDuration::ZERO;
        while now < end {
            let state = p.state();
            let dwell = p.dwell_and_flip(now, &mut rng);
            let until = (now + dwell).min(end);
            if state == OwnerState::Active {
                active += until.since(now);
            }
            now += dwell;
        }
        active.as_secs_f64() / horizon.as_secs_f64()
    }

    #[test]
    fn long_run_activity_tracks_profile_mean() {
        let cfg = OwnerConfig::default();
        let target = cfg.profile.weekly_mean();
        let got = active_fraction(cfg, 42, SimDuration::from_days(56));
        assert!(
            (got - target).abs() < 0.05,
            "activity {got} vs profile mean {target}"
        );
    }

    #[test]
    fn flat_profile_hits_exact_target() {
        let cfg = OwnerConfig {
            profile: DiurnalProfile::flat(0.4),
            ..OwnerConfig::default()
        };
        let got = active_fraction(cfg, 7, SimDuration::from_days(60));
        assert!((got - 0.4).abs() < 0.03, "activity {got}");
    }

    #[test]
    fn busier_owner_is_busier() {
        let base = OwnerConfig {
            profile: DiurnalProfile::flat(0.3),
            ..OwnerConfig::default()
        };
        let busy = OwnerConfig {
            activity_scale: 1.5,
            profile: DiurnalProfile::flat(0.3),
            ..OwnerConfig::default()
        };
        let f_base = active_fraction(base, 11, SimDuration::from_days(40));
        let f_busy = active_fraction(busy, 11, SimDuration::from_days(40));
        assert!(
            f_busy > f_base + 0.08,
            "busy {f_busy} should exceed base {f_base}"
        );
    }

    #[test]
    fn idle_interval_autocorrelation_is_positive() {
        // With strong regime persistence, consecutive idle intervals
        // correlate; with none, they do not (statistically).
        fn idle_autocorr(persistence: f64, seed: u64) -> f64 {
            let cfg = OwnerConfig {
                profile: DiurnalProfile::flat(0.3),
                regime_persistence: persistence,
                long_regime_factor: 1.9,
                ..OwnerConfig::default()
            };
            let mut rng = SimRng::seed_from(seed);
            let mut p = OwnerProcess::new(cfg, &mut rng);
            let mut now = SimTime::ZERO;
            let mut idles = Vec::new();
            for _ in 0..40_000 {
                let state = p.state();
                let dwell = p.dwell_and_flip(now, &mut rng);
                if state == OwnerState::Idle {
                    idles.push(dwell.as_secs_f64());
                }
                now += dwell;
            }
            let n = idles.len() - 1;
            let mean = idles.iter().sum::<f64>() / idles.len() as f64;
            let var = idles.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / idles.len() as f64;
            let cov = (0..n)
                .map(|i| (idles[i] - mean) * (idles[i + 1] - mean))
                .sum::<f64>()
                / n as f64;
            cov / var
        }
        let correlated = idle_autocorr(0.9, 3);
        let uncorrelated = idle_autocorr(0.5, 3);
        assert!(correlated > 0.05, "autocorr {correlated} should be positive");
        assert!(
            uncorrelated.abs() < 0.05,
            "autocorr {uncorrelated} should be near zero"
        );
        assert!(correlated > uncorrelated + 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let mut p = OwnerProcess::new(OwnerConfig::default(), &mut rng);
            let mut now = SimTime::ZERO;
            let mut out = Vec::new();
            for _ in 0..100 {
                let d = p.dwell_and_flip(now, &mut rng);
                now += d;
                out.push(d.as_millis());
            }
            out
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn dwell_is_never_zero() {
        let mut rng = SimRng::seed_from(9);
        let mut p = OwnerProcess::new(OwnerConfig::default(), &mut rng);
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            let d = p.dwell_and_flip(now, &mut rng);
            assert!(!d.is_zero());
            now += d;
        }
    }

    #[test]
    fn fleet_is_heterogeneous_and_stable() {
        let base = OwnerConfig::default();
        let fleet = build_fleet(23, &base, 0.4, 99);
        assert_eq!(fleet.len(), 23);
        let scales: Vec<f64> = fleet.iter().map(|p| p.config().activity_scale).collect();
        let min = scales.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scales.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "fleet should vary: {min}..{max}");
        // Same seed → identical fleet.
        let fleet2 = build_fleet(23, &base, 0.4, 99);
        let scales2: Vec<f64> = fleet2.iter().map(|p| p.config().activity_scale).collect();
        assert_eq!(scales, scales2);
        // Prefix-stability: station i is the same in a bigger fleet.
        let bigger = build_fleet(40, &base, 0.4, 99);
        let scales3: Vec<f64> = bigger.iter().take(23).map(|p| p.config().activity_scale).collect();
        assert_eq!(scales, scales3);
    }

    #[test]
    #[should_panic(expected = "regime persistence")]
    fn bad_persistence_rejected() {
        let cfg = OwnerConfig {
            regime_persistence: 1.5,
            ..OwnerConfig::default()
        };
        let mut rng = SimRng::seed_from(1);
        OwnerProcess::new(cfg, &mut rng);
    }
}
