//! Static per-workstation hardware profile.
//!
//! The scheduler needs two hardware facts about a station (paper §4):
//! how fast it is (all VAXstation IIs in the paper — but the §5 future-work
//! item about SUN ports motivates a speed factor) and how much disk is free
//! for foreign checkpoint images.

use condor_sim::time::SimDuration;

/// Hardware profile of one workstation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationProfile {
    /// CPU speed relative to the reference VAXstation II (1.0 = reference).
    /// A job with 1 h of demand takes `1 h / cpu_factor` of wall time.
    pub cpu_factor: f64,
    /// Disk bytes available for foreign checkpoint/executable images.
    pub disk_capacity: u64,
}

impl Default for StationProfile {
    fn default() -> Self {
        StationProfile {
            cpu_factor: 1.0,
            // Enough scratch for a heavy user's standing queue of
            // half-megabyte images (the paper's users were occasionally
            // disk-limited, but Table 1's 918 jobs were all admitted).
            disk_capacity: 100_000_000,
        }
    }
}

impl StationProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_factor` is not strictly positive and finite.
    pub fn new(cpu_factor: f64, disk_capacity: u64) -> Self {
        assert!(
            cpu_factor.is_finite() && cpu_factor > 0.0,
            "bad cpu factor {cpu_factor}"
        );
        StationProfile {
            cpu_factor,
            disk_capacity,
        }
    }

    /// Wall-clock time to deliver `demand` of reference-CPU work on this
    /// station.
    pub fn wall_time_for(&self, demand: SimDuration) -> SimDuration {
        demand.mul_f64(1.0 / self.cpu_factor)
    }

    /// Reference-CPU work delivered by running on this station for `wall`.
    pub fn work_done_in(&self, wall: SimDuration) -> SimDuration {
        wall.mul_f64(self.cpu_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_station_is_identity() {
        let s = StationProfile::default();
        let d = SimDuration::from_hours(3);
        assert_eq!(s.wall_time_for(d), d);
        assert_eq!(s.work_done_in(d), d);
    }

    #[test]
    fn fast_station_finishes_sooner() {
        let s = StationProfile::new(2.0, 0);
        let d = SimDuration::from_hours(2);
        assert_eq!(s.wall_time_for(d), SimDuration::from_hours(1));
        assert_eq!(s.work_done_in(SimDuration::from_hours(1)), SimDuration::from_hours(2));
    }

    #[test]
    fn wall_and_work_are_inverse() {
        let s = StationProfile::new(1.7, 0);
        let d = SimDuration::from_minutes(90);
        let roundtrip = s.work_done_in(s.wall_time_for(d));
        let err = roundtrip.as_millis() as i64 - d.as_millis() as i64;
        assert!(err.abs() <= 1, "rounding drift {err} ms");
    }

    #[test]
    #[should_panic(expected = "bad cpu factor")]
    fn zero_speed_rejected() {
        StationProfile::new(0.0, 0);
    }
}

/// Workstation architecture (paper §5, future-work item 4: the planned SUN
/// port, where a job compiled into two binaries could start on either
/// architecture but, once run on one, could not move to the other without
/// losing all its work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// DEC VAXstation II — the paper's fleet.
    Vax,
    /// SUN workstation — the planned port target.
    Sun,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Vax => f.write_str("vax"),
            Arch::Sun => f.write_str("sun"),
        }
    }
}

/// The set of architectures a job has binaries for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchSet {
    vax: bool,
    sun: bool,
}

impl ArchSet {
    /// A VAX-only binary.
    pub const fn vax_only() -> Self {
        ArchSet { vax: true, sun: false }
    }

    /// A SUN-only binary.
    pub const fn sun_only() -> Self {
        ArchSet { vax: false, sun: true }
    }

    /// Binaries for both architectures.
    pub const fn both() -> Self {
        ArchSet { vax: true, sun: true }
    }

    /// The singleton set for one architecture.
    pub const fn only(arch: Arch) -> Self {
        match arch {
            Arch::Vax => ArchSet::vax_only(),
            Arch::Sun => ArchSet::sun_only(),
        }
    }

    /// Whether the job can start on `arch`.
    pub const fn supports(self, arch: Arch) -> bool {
        match arch {
            Arch::Vax => self.vax,
            Arch::Sun => self.sun,
        }
    }

    /// Number of supported architectures.
    pub const fn len(self) -> usize {
        self.vax as usize + self.sun as usize
    }

    /// `true` for the (invalid in practice) empty set.
    pub const fn is_empty(self) -> bool {
        !self.vax && !self.sun
    }
}

impl Default for ArchSet {
    /// The paper's 1988 reality: everything is a VAX binary.
    fn default() -> Self {
        ArchSet::vax_only()
    }
}

impl std::fmt::Display for ArchSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.vax, self.sun) {
            (true, true) => f.write_str("vax+sun"),
            (true, false) => f.write_str("vax"),
            (false, true) => f.write_str("sun"),
            (false, false) => f.write_str("(none)"),
        }
    }
}

#[cfg(test)]
mod arch_tests {
    use super::*;

    #[test]
    fn arch_set_membership() {
        assert!(ArchSet::vax_only().supports(Arch::Vax));
        assert!(!ArchSet::vax_only().supports(Arch::Sun));
        assert!(ArchSet::both().supports(Arch::Vax));
        assert!(ArchSet::both().supports(Arch::Sun));
        assert_eq!(ArchSet::only(Arch::Sun), ArchSet::sun_only());
        assert_eq!(ArchSet::both().len(), 2);
        assert!(!ArchSet::both().is_empty());
        assert_eq!(ArchSet::default(), ArchSet::vax_only());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Arch::Vax.to_string(), "vax");
        assert_eq!(Arch::Sun.to_string(), "sun");
        assert_eq!(ArchSet::both().to_string(), "vax+sun");
        assert_eq!(ArchSet::sun_only().to_string(), "sun");
    }
}
