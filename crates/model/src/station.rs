//! Static per-workstation hardware profile.
//!
//! The scheduler needs two hardware facts about a station (paper §4):
//! how fast it is (all VAXstation IIs in the paper — but the §5 future-work
//! item about SUN ports motivates a speed factor) and how much disk is free
//! for foreign checkpoint images.

use condor_sim::time::SimDuration;

/// Hardware profile of one workstation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationProfile {
    /// CPU speed relative to the reference VAXstation II (1.0 = reference).
    /// A job with 1 h of demand takes `1 h / cpu_factor` of wall time.
    pub cpu_factor: f64,
    /// Disk bytes available for foreign checkpoint/executable images.
    pub disk_capacity: u64,
}

impl Default for StationProfile {
    fn default() -> Self {
        StationProfile {
            cpu_factor: 1.0,
            // Enough scratch for a heavy user's standing queue of
            // half-megabyte images (the paper's users were occasionally
            // disk-limited, but Table 1's 918 jobs were all admitted).
            disk_capacity: 100_000_000,
        }
    }
}

impl StationProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_factor` is not strictly positive and finite.
    pub fn new(cpu_factor: f64, disk_capacity: u64) -> Self {
        assert!(
            cpu_factor.is_finite() && cpu_factor > 0.0,
            "bad cpu factor {cpu_factor}"
        );
        StationProfile {
            cpu_factor,
            disk_capacity,
        }
    }

    /// Wall-clock time to deliver `demand` of reference-CPU work on this
    /// station.
    pub fn wall_time_for(&self, demand: SimDuration) -> SimDuration {
        demand.mul_f64(1.0 / self.cpu_factor)
    }

    /// Reference-CPU work delivered by running on this station for `wall`.
    pub fn work_done_in(&self, wall: SimDuration) -> SimDuration {
        wall.mul_f64(self.cpu_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_station_is_identity() {
        let s = StationProfile::default();
        let d = SimDuration::from_hours(3);
        assert_eq!(s.wall_time_for(d), d);
        assert_eq!(s.work_done_in(d), d);
    }

    #[test]
    fn fast_station_finishes_sooner() {
        let s = StationProfile::new(2.0, 0);
        let d = SimDuration::from_hours(2);
        assert_eq!(s.wall_time_for(d), SimDuration::from_hours(1));
        assert_eq!(s.work_done_in(SimDuration::from_hours(1)), SimDuration::from_hours(2));
    }

    #[test]
    fn wall_and_work_are_inverse() {
        let s = StationProfile::new(1.7, 0);
        let d = SimDuration::from_minutes(90);
        let roundtrip = s.work_done_in(s.wall_time_for(d));
        let err = roundtrip.as_millis() as i64 - d.as_millis() as i64;
        assert!(err.abs() <= 1, "rounding drift {err} ms");
    }

    #[test]
    #[should_panic(expected = "bad cpu factor")]
    fn zero_speed_rejected() {
        StationProfile::new(0.0, 0);
    }
}

/// A station capacity or job demand, expressed per dimension in integer
/// **milli-units** (1000 = one whole machine's worth). Integer units keep
/// capacity arithmetic exact, so conservation invariants can be checked
/// with `==`/`<=` instead of epsilon comparisons, and the whole-machine
/// default reproduces legacy single-occupancy behavior bit for bit.
///
/// Three dimensions, per the fractional-resource model: CPU share, memory
/// share, and one generic *tag* dimension (an accelerator, a license, a
/// software attribute — anything scarce and countable). The tag dimension
/// defaults to zero on both sides, so it only constrains placement when a
/// fleet actually declares it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceVec {
    /// CPU share in milli-machines (1000 = the whole CPU).
    pub cpu_milli: u32,
    /// Memory share in milli-machines (1000 = all of the machine's memory).
    pub mem_milli: u32,
    /// Generic tag/accelerator dimension in milli-units (default 0).
    pub tag_milli: u32,
}

impl ResourceVec {
    /// One whole machine: full CPU, full memory, no tag resource.
    pub const WHOLE: ResourceVec = ResourceVec { cpu_milli: 1000, mem_milli: 1000, tag_milli: 0 };

    /// The zero vector (an empty station, or a demand of nothing).
    pub const ZERO: ResourceVec = ResourceVec { cpu_milli: 0, mem_milli: 0, tag_milli: 0 };

    /// A CPU+memory share with no tag demand.
    pub const fn new(cpu_milli: u32, mem_milli: u32) -> Self {
        ResourceVec { cpu_milli, mem_milli, tag_milli: 0 }
    }

    /// A share of `milli` in both CPU and memory — the common "half a
    /// machine" shape (`ResourceVec::share(500)`).
    pub const fn share(milli: u32) -> Self {
        ResourceVec { cpu_milli: milli, mem_milli: milli, tag_milli: 0 }
    }

    /// `true` when this demand fits inside `free` on every dimension.
    pub const fn fits(self, free: ResourceVec) -> bool {
        self.cpu_milli <= free.cpu_milli
            && self.mem_milli <= free.mem_milli
            && self.tag_milli <= free.tag_milli
    }

    /// Per-dimension sum (saturating; capacities never approach u32::MAX
    /// in practice).
    pub const fn add(self, other: ResourceVec) -> ResourceVec {
        ResourceVec {
            cpu_milli: self.cpu_milli.saturating_add(other.cpu_milli),
            mem_milli: self.mem_milli.saturating_add(other.mem_milli),
            tag_milli: self.tag_milli.saturating_add(other.tag_milli),
        }
    }

    /// Per-dimension difference, clamped at zero.
    pub const fn sub(self, other: ResourceVec) -> ResourceVec {
        ResourceVec {
            cpu_milli: self.cpu_milli.saturating_sub(other.cpu_milli),
            mem_milli: self.mem_milli.saturating_sub(other.mem_milli),
            tag_milli: self.tag_milli.saturating_sub(other.tag_milli),
        }
    }

    /// `true` for the legacy whole-machine demand: full CPU and memory and
    /// no tag requirement. Whole-demand jobs are mutually exclusive on a
    /// whole-capacity station, which is exactly the single-occupancy rule
    /// the fractional model generalizes.
    pub const fn is_whole(self) -> bool {
        self.cpu_milli >= 1000 && self.mem_milli >= 1000
    }

    /// Difference of a running total and one of its summands. Unlike
    /// [`ResourceVec::sub`] this must not clamp: debug builds assert the
    /// subtrahend really is contained, so incrementally maintained
    /// occupancy totals fail loudly instead of silently drifting.
    pub fn sub_exact(self, other: ResourceVec) -> ResourceVec {
        debug_assert!(other.fits(self), "sub_exact underflow: {other} from {self}");
        self.sub(other)
    }

    /// `true` when every dimension is zero.
    pub const fn is_zero(self) -> bool {
        self.cpu_milli == 0 && self.mem_milli == 0 && self.tag_milli == 0
    }
}

impl Default for ResourceVec {
    /// Whole-machine: the 1988 reality, and the digest-pinned default.
    fn default() -> Self {
        ResourceVec::WHOLE
    }
}

impl std::fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cpu{}m/mem{}m/tag{}m",
            self.cpu_milli, self.mem_milli, self.tag_milli
        )
    }
}

#[cfg(test)]
mod resource_tests {
    use super::*;

    #[test]
    fn default_is_whole_machine() {
        assert_eq!(ResourceVec::default(), ResourceVec::WHOLE);
        assert!(ResourceVec::WHOLE.is_whole());
        assert!(!ResourceVec::share(500).is_whole());
    }

    #[test]
    fn fits_is_per_dimension() {
        let free = ResourceVec::new(600, 900);
        assert!(ResourceVec::share(500).fits(free));
        assert!(!ResourceVec::new(700, 100).fits(free));
        assert!(!ResourceVec::new(100, 950).fits(free));
        assert!(!ResourceVec { cpu_milli: 100, mem_milli: 100, tag_milli: 1 }.fits(free));
        assert!(ResourceVec::ZERO.fits(ResourceVec::ZERO));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = ResourceVec::share(300);
        let b = ResourceVec::new(200, 500);
        assert_eq!(a.add(b).sub(b), a);
        // sub clamps at zero rather than wrapping.
        assert_eq!(ResourceVec::ZERO.sub(a), ResourceVec::ZERO);
        assert_eq!(a.add(b).sub_exact(b), a);
        assert!(ResourceVec::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sub_exact underflow")]
    fn sub_exact_rejects_underflow() {
        ResourceVec::share(100).sub_exact(ResourceVec::share(200));
    }

    #[test]
    fn two_halves_fill_a_whole() {
        let half = ResourceVec::share(500);
        let used = half.add(half);
        assert_eq!(used.cpu_milli, 1000);
        assert!(half.fits(ResourceVec::WHOLE.sub(half)));
        assert!(!half.fits(ResourceVec::WHOLE.sub(used)));
    }

    #[test]
    fn display_form() {
        assert_eq!(ResourceVec::WHOLE.to_string(), "cpu1000m/mem1000m/tag0m");
    }
}

/// Workstation architecture (paper §5, future-work item 4: the planned SUN
/// port, where a job compiled into two binaries could start on either
/// architecture but, once run on one, could not move to the other without
/// losing all its work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// DEC VAXstation II — the paper's fleet.
    Vax,
    /// SUN workstation — the planned port target.
    Sun,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Vax => f.write_str("vax"),
            Arch::Sun => f.write_str("sun"),
        }
    }
}

/// The set of architectures a job has binaries for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchSet {
    vax: bool,
    sun: bool,
}

impl ArchSet {
    /// A VAX-only binary.
    pub const fn vax_only() -> Self {
        ArchSet { vax: true, sun: false }
    }

    /// A SUN-only binary.
    pub const fn sun_only() -> Self {
        ArchSet { vax: false, sun: true }
    }

    /// Binaries for both architectures.
    pub const fn both() -> Self {
        ArchSet { vax: true, sun: true }
    }

    /// The singleton set for one architecture.
    pub const fn only(arch: Arch) -> Self {
        match arch {
            Arch::Vax => ArchSet::vax_only(),
            Arch::Sun => ArchSet::sun_only(),
        }
    }

    /// Whether the job can start on `arch`.
    pub const fn supports(self, arch: Arch) -> bool {
        match arch {
            Arch::Vax => self.vax,
            Arch::Sun => self.sun,
        }
    }

    /// Number of supported architectures.
    pub const fn len(self) -> usize {
        self.vax as usize + self.sun as usize
    }

    /// `true` for the (invalid in practice) empty set.
    pub const fn is_empty(self) -> bool {
        !self.vax && !self.sun
    }
}

impl Default for ArchSet {
    /// The paper's 1988 reality: everything is a VAX binary.
    fn default() -> Self {
        ArchSet::vax_only()
    }
}

impl std::fmt::Display for ArchSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.vax, self.sun) {
            (true, true) => f.write_str("vax+sun"),
            (true, false) => f.write_str("vax"),
            (false, true) => f.write_str("sun"),
            (false, false) => f.write_str("(none)"),
        }
    }
}

#[cfg(test)]
mod arch_tests {
    use super::*;

    #[test]
    fn arch_set_membership() {
        assert!(ArchSet::vax_only().supports(Arch::Vax));
        assert!(!ArchSet::vax_only().supports(Arch::Sun));
        assert!(ArchSet::both().supports(Arch::Vax));
        assert!(ArchSet::both().supports(Arch::Sun));
        assert_eq!(ArchSet::only(Arch::Sun), ArchSet::sun_only());
        assert_eq!(ArchSet::both().len(), 2);
        assert!(!ArchSet::both().is_empty());
        assert_eq!(ArchSet::default(), ArchSet::vax_only());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Arch::Vax.to_string(), "vax");
        assert_eq!(Arch::Sun.to_string(), "sun");
        assert_eq!(ArchSet::both().to_string(), "vax+sun");
        assert_eq!(ArchSet::sun_only().to_string(), "sun");
    }
}
