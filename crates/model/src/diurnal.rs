//! Diurnal/weekly modulation of owner activity.
//!
//! Figure 6 of the paper shows local utilization swinging from ~20% at
//! night to ~50% afternoon peaks on weekdays, with weekends flat and quiet.
//! A [`DiurnalProfile`] maps an instant to a target *activity level* — the
//! long-run fraction of time an owner is using their workstation at that
//! time of week — which the owner-activity process then realises
//! stochastically.

use condor_sim::time::{SimDuration, SimTime};

/// Hour-by-hour activity levels over a week.
///
/// The week starts at simulated time zero, which is **Monday 00:00** by
/// convention; experiment binaries label their axes accordingly.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    /// 168 hourly activity levels in `[0, 1]`, Monday 00:00 first.
    hourly: Vec<f64>,
}

impl DiurnalProfile {
    /// Builds a profile from 168 hourly levels.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 168 values in `[0, 1]` are given.
    pub fn from_hourly(hourly: Vec<f64>) -> Self {
        assert_eq!(hourly.len(), 168, "a week has 168 hours");
        for &v in &hourly {
            assert!((0.0..=1.0).contains(&v), "activity level {v} outside [0, 1]");
        }
        DiurnalProfile { hourly }
    }

    /// A constant activity level at all hours.
    pub fn flat(level: f64) -> Self {
        DiurnalProfile::from_hourly(vec![level; 168])
    }

    /// The paper's departmental pattern: weekday nights quiet, mornings
    /// ramping, afternoon peaks near 50–60%, evenings tapering; weekends
    /// uniformly light. Calibrated so the *realised* local utilization of
    /// the owner process lands near the 25% reported in §3 (realised
    /// activity runs ~15% below the profile because idle intervals sampled
    /// during quiet hours stretch into busier ones).
    pub fn paper_department() -> Self {
        let mut hourly = Vec::with_capacity(168);
        for day in 0..7 {
            let weekend = day >= 5;
            for hour in 0..24 {
                let level = if weekend {
                    match hour {
                        10..=17 => 0.25,
                        _ => 0.18,
                    }
                } else {
                    match hour {
                        0..=7 => 0.12,
                        8..=11 => 0.45,
                        12..=16 => 0.58,
                        17..=21 => 0.35,
                        _ => 0.15,
                    }
                };
                hourly.push(level);
            }
        }
        DiurnalProfile::from_hourly(hourly)
    }

    /// The activity level at instant `t` (weeks repeat).
    pub fn level_at(&self, t: SimTime) -> f64 {
        let hour_of_week = (t % SimDuration::WEEK) / SimDuration::HOUR;
        self.hourly[hour_of_week as usize]
    }

    /// Mean activity level over the whole week.
    pub fn weekly_mean(&self) -> f64 {
        self.hourly.iter().sum::<f64>() / 168.0
    }

    /// Largest hourly level in the week.
    pub fn peak(&self) -> f64 {
        self.hourly.iter().cloned().fold(0.0, f64::max)
    }

    /// Smallest hourly level in the week.
    pub fn trough(&self) -> f64 {
        self.hourly.iter().cloned().fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_shape() {
        let p = DiurnalProfile::paper_department();
        // Monday 03:00 — night trough.
        assert_eq!(p.level_at(SimTime::from_hours(3)), 0.12);
        // Monday 14:00 — afternoon peak.
        assert_eq!(p.level_at(SimTime::from_hours(14)), 0.58);
        // Saturday 14:00 (day 5) — quiet weekend.
        assert_eq!(p.level_at(SimTime::from_hours(5 * 24 + 14)), 0.25);
        // Weekly mean near the paper's 25% local utilization (weekends pull
        // the whole-week figure under the weekday average).
        let mean = p.weekly_mean();
        assert!((0.22..=0.32).contains(&mean), "weekly mean {mean}");
        assert_eq!(p.peak(), 0.58);
        assert_eq!(p.trough(), 0.12);
    }

    #[test]
    fn weeks_repeat() {
        let p = DiurnalProfile::paper_department();
        let t = SimTime::from_hours(14);
        let next_week = t + SimDuration::WEEK;
        let in_a_month = t + SimDuration::WEEK * 4;
        assert_eq!(p.level_at(t), p.level_at(next_week));
        assert_eq!(p.level_at(t), p.level_at(in_a_month));
    }

    #[test]
    fn flat_profile() {
        let p = DiurnalProfile::flat(0.3);
        assert_eq!(p.level_at(SimTime::ZERO), 0.3);
        assert_eq!(p.level_at(SimTime::from_hours(100)), 0.3);
        assert!((p.weekly_mean() - 0.3).abs() < 1e-12);
        assert_eq!(p.peak(), 0.3);
        assert_eq!(p.trough(), 0.3);
    }

    #[test]
    #[should_panic(expected = "168 hours")]
    fn wrong_length_rejected() {
        DiurnalProfile::from_hourly(vec![0.5; 100]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_level_rejected() {
        let mut v = vec![0.5; 168];
        v[3] = 1.5;
        DiurnalProfile::from_hourly(v);
    }

    #[test]
    fn hour_boundaries() {
        let p = DiurnalProfile::paper_department();
        // 07:59:59.999 is still night; 08:00 flips to morning.
        assert_eq!(p.level_at(SimTime::from_millis(8 * 3_600_000 - 1)), 0.12);
        assert_eq!(p.level_at(SimTime::from_hours(8)), 0.45);
    }
}
