//! The cost model: every constant the paper reports or implies.
//!
//! All control-plane intervals and per-operation costs live here so that
//! experiments can reference one authoritative source and ablations can
//! perturb a single knob. Defaults are the paper's measured values on
//! VAXstation II hardware (§2.1, §3.1, §4).

use condor_sim::time::SimDuration;

/// One megabyte, the unit of the paper's "5 seconds per megabyte" rule.
pub const MEGABYTE: u64 = 1_000_000;

/// Control-plane and per-operation costs of the Condor machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// How often the central coordinator polls all stations (paper §2.1:
    /// every two minutes).
    pub coordinator_poll_interval: SimDuration,
    /// How often a local scheduler checks for owner activity while a
    /// foreign job runs (paper §2.1: every ½ minute).
    pub owner_check_interval: SimDuration,
    /// How long a preempted job is held suspended at the remote station
    /// before being checkpointed and moved, in case the owner's activity is
    /// brief (paper §4: five minutes).
    pub eviction_grace: SimDuration,
    /// Minimum spacing between successive remote placements from one
    /// station, protecting the submitting machine and the network (paper
    /// §4: a single job every two minutes).
    pub placement_throttle: SimDuration,
    /// Local CPU consumed to place or checkpoint a job, per byte of image
    /// (paper §3.1: ≈ 5 seconds per megabyte).
    pub transfer_cpu_per_mb: SimDuration,
    /// Local CPU consumed on the *home* workstation for each remote system
    /// call executed through the shadow (paper §3.1: ≈ 10 ms).
    pub remote_syscall_cost: SimDuration,
    /// CPU cost of the same system call executed locally, in microseconds
    /// (paper §3.1: 1/20 of the remote cost, ≈ 500 µs). Stored in µs
    /// because the simulated clock is millisecond-grained; consumers
    /// multiply by call counts before rounding.
    pub local_syscall_cost_us: u64,
    /// Fraction of a workstation's capacity consumed by its local scheduler
    /// while hosting or submitting (paper §3.1: < 1%).
    pub local_scheduler_overhead: f64,
    /// Fraction of the hosting workstation's capacity consumed by the
    /// central coordinator (paper §3.1: < 1% even at 40 stations).
    pub coordinator_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            coordinator_poll_interval: SimDuration::from_minutes(2),
            owner_check_interval: SimDuration::from_secs(30),
            eviction_grace: SimDuration::from_minutes(5),
            placement_throttle: SimDuration::from_minutes(2),
            transfer_cpu_per_mb: SimDuration::from_secs(5),
            remote_syscall_cost: SimDuration::from_millis(10),
            local_syscall_cost_us: 500,
            local_scheduler_overhead: 0.005,
            coordinator_overhead: 0.005,
        }
    }
}

impl CostModel {
    /// Local CPU charged to the home workstation for moving an image of
    /// `bytes` (placement **or** checkpoint — the paper treats them
    /// symmetrically).
    pub fn transfer_cpu_cost(&self, bytes: u64) -> SimDuration {
        self.transfer_cpu_per_mb
            .mul_f64(bytes as f64 / MEGABYTE as f64)
    }

    /// Local CPU charged to the home workstation for `n` remote system
    /// calls.
    pub fn remote_syscall_cpu(&self, n: u64) -> SimDuration {
        self.remote_syscall_cost * n
    }

    /// CPU charged for `n` system calls executed *locally* (used when
    /// comparing against local execution and in leverage denominators).
    pub fn local_syscall_cpu(&self, n: u64) -> SimDuration {
        SimDuration::from_millis(n * self.local_syscall_cost_us / 1_000)
    }

    /// The ratio by which a system call is more expensive remotely than
    /// locally (20× in the paper).
    pub fn syscall_penalty_ratio(&self) -> f64 {
        self.remote_syscall_cost.as_millis() as f64 * 1_000.0 / self.local_syscall_cost_us as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CostModel::default();
        assert_eq!(c.coordinator_poll_interval, SimDuration::from_secs(120));
        assert_eq!(c.owner_check_interval, SimDuration::from_secs(30));
        assert_eq!(c.eviction_grace, SimDuration::from_secs(300));
        assert_eq!(c.placement_throttle, SimDuration::from_secs(120));
        assert_eq!(c.transfer_cpu_per_mb, SimDuration::from_secs(5));
        assert_eq!(c.remote_syscall_cost, SimDuration::from_millis(10));
        assert!(c.local_scheduler_overhead < 0.01);
        assert!(c.coordinator_overhead < 0.01);
    }

    #[test]
    fn half_megabyte_costs_two_and_a_half_seconds() {
        // Paper §3.1: average image 0.5 MB → ≈ 2.5 s per move.
        let c = CostModel::default();
        assert_eq!(
            c.transfer_cpu_cost(MEGABYTE / 2),
            SimDuration::from_millis(2_500)
        );
    }

    #[test]
    fn transfer_cost_is_linear_in_size() {
        let c = CostModel::default();
        assert_eq!(c.transfer_cpu_cost(0), SimDuration::ZERO);
        assert_eq!(c.transfer_cpu_cost(MEGABYTE), SimDuration::from_secs(5));
        assert_eq!(c.transfer_cpu_cost(3 * MEGABYTE), SimDuration::from_secs(15));
    }

    #[test]
    fn syscall_costs() {
        let c = CostModel::default();
        assert_eq!(c.remote_syscall_cpu(100), SimDuration::from_secs(1));
        // 2000 local calls at 500 µs = 1 s.
        assert_eq!(c.local_syscall_cpu(2_000), SimDuration::from_secs(1));
        // Paper: remote syscalls are 20× the local cost.
        assert_eq!(c.syscall_penalty_ratio(), 20.0);
    }
}
