//! Determinism properties of the replication harness.
//!
//! The parallel path must be indistinguishable from the serial one — not
//! "statistically equivalent", but bit-for-bit: thread scheduling may not
//! leak into any reported digit. And the simulation itself must be a pure
//! function of (config, jobs, horizon): running it twice gives identical
//! results, which is what makes seed-order aggregation sufficient for
//! reproducibility.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor_core::cluster::run_cluster;
use condor_core::config::ClusterConfig;
use condor_core::job::{JobId, JobSpec, UserId};
use condor_metrics::replicate::{par_map, replicate, replicate_par, MeanCi};
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A small but non-trivial cluster run: enough jobs and machines for
/// preemptions and migrations to occur within a short horizon.
fn run_small(seed: u64) -> condor_core::cluster::RunOutput {
    let jobs: Vec<JobSpec> = (0..12)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 3) as u32),
            home: NodeId::new((i % 4) as u32),
            arrival: SimTime::ZERO + SimDuration::from_minutes(i * 17),
            demand: SimDuration::from_hours(1 + i % 5),
            image_bytes: 400_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect();
    let config = ClusterConfig {
        stations: 4,
        seed,
        ..ClusterConfig::default()
    };
    run_cluster(config, jobs, SimDuration::from_days(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// replicate_par over real cluster runs is bit-identical to the serial
    /// replicate: same mean, same half-width, same n.
    #[test]
    fn parallel_replication_matches_serial(
        raw_seeds in prop::collection::vec(0u64..1_000_000, 1..6),
    ) {
        let metric = |seed: u64| {
            let out = run_small(seed);
            out.totals.migrations as f64 + out.totals.preemptions_owner as f64 * 0.25
        };
        let serial = replicate(&raw_seeds, metric);
        let parallel = replicate_par(&raw_seeds, metric);
        prop_assert_eq!(serial.mean.to_bits(), parallel.mean.to_bits());
        prop_assert_eq!(serial.half_width.to_bits(), parallel.half_width.to_bits());
        prop_assert_eq!(serial.n, parallel.n);
    }

    /// par_map preserves item order no matter how items land on workers.
    #[test]
    fn par_map_is_order_preserving(xs in prop::collection::vec(any::<u64>(), 0..64)) {
        let doubled = par_map(&xs, |&x| x.wrapping_mul(2));
        prop_assert_eq!(doubled, xs.iter().map(|x| x.wrapping_mul(2)).collect::<Vec<_>>());
    }

    /// The simulation is a pure function of its inputs: the same seed run
    /// twice yields identical aggregate counters and event counts.
    #[test]
    fn run_cluster_is_deterministic(seed in 0u64..100_000) {
        let a = run_small(seed);
        let b = run_small(seed);
        prop_assert_eq!(a.totals, b.totals);
        prop_assert_eq!(a.events_dispatched, b.events_dispatched);
        prop_assert_eq!(a.bus_bytes_moved, b.bus_bytes_moved);
        prop_assert_eq!(a.jobs.len(), b.jobs.len());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            prop_assert_eq!(ja.state, jb.state);
            prop_assert_eq!(ja.completed_at, jb.completed_at);
        }
    }
}

#[test]
fn mean_ci_display_is_stable() {
    let ci = MeanCi::from_values(&[2.0, 4.0, 6.0, 8.0]);
    assert_eq!(ci.n, 4);
    assert!(format!("{ci}").starts_with("5.00 ± "));
}
