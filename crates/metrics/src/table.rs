//! Plain-text table rendering for experiment binaries.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Examples
///
/// ```
/// use condor_metrics::table::{Align, Table};
///
/// let mut t = Table::new(vec!["User", "Jobs"], vec![Align::Left, Align::Right]);
/// t.row(vec!["A".into(), "690".into()]);
/// let text = t.render();
/// assert!(text.contains("User"));
/// assert!(text.contains("690"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers and alignments.
    ///
    /// # Panics
    ///
    /// Panics if `headers` and `aligns` lengths differ or are empty.
    pub fn new(headers: Vec<&str>, aligns: Vec<Align>) -> Self {
        assert!(!headers.is_empty(), "table needs columns");
        assert_eq!(headers.len(), aligns.len(), "one alignment per column");
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a rule (rendered as a dashed separator line).
    pub fn rule(&mut self) -> &mut Table {
        self.rows.push(Vec::new()); // sentinel
        self
    }

    /// Renders the table to a string ending in a newline.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, (&w, align)) in widths.iter().zip(&self.aligns).enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                match align {
                    Align::Left => line.push_str(&format!(" {cell:<w$} |")),
                    Align::Right => line.push_str(&format!(" {cell:>w$} |")),
                }
            }
            line.push('\n');
            line
        };
        let rule = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line.push('\n');
            line
        };
        let mut out = String::new();
        out.push_str(&rule);
        out.push_str(&render_row(&self.headers));
        out.push_str(&rule);
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&rule);
            } else {
                out.push_str(&render_row(row));
            }
        }
        out.push_str(&rule);
        out
    }
}

/// Formats a float with `digits` decimal places (helper for table cells).
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Name", "Count"], vec![Align::Left, Align::Right]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // All lines have equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("| alpha |"));
        assert!(s.contains("| 10000 |"));
        // Right-aligned: "1" is padded on the left.
        assert!(s.contains("|     1 |"));
    }

    #[test]
    fn rule_inserts_separator() {
        let mut t = Table::new(vec!["x"], vec![Align::Left]);
        t.row(vec!["a".into()]);
        t.rule();
        t.row(vec!["b".into()]);
        let s = t.render();
        let rules = s.lines().filter(|l| l.starts_with('+')).count();
        assert_eq!(rules, 4); // top, under header, mid, bottom
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_arity_rejected() {
        let mut t = Table::new(vec!["a", "b"], vec![Align::Left, Align::Left]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(1300.0, 0), "1300");
    }
}
