//! # condor-metrics — estimators and reports for the paper's evaluation
//!
//! Everything needed to turn a [`condor_core::cluster::RunOutput`] into the
//! paper's tables and figures:
//!
//! * [`buckets`] — per-demand-bucket means (the shared x-axis of Figures
//!   4, 8, and 9: wait ratio, checkpoint rate, leverage);
//! * [`summary`] — headline run statistics (§3's available/consumed hours,
//!   utilizations, mean leverage) and heavy/light user classification;
//! * [`report`] — terminal rendering of the streaming
//!   [`Telemetry`](condor_core::telemetry::Telemetry) summary;
//! * [`export`] — CSV figure data and the JSONL trace-export sink;
//! * [`table`] — monospace table rendering (Table 1);
//! * [`plot`] — ASCII line charts for eyeballing figure shapes from a
//!   terminal.
//!
//! ## Example
//!
//! ```
//! use condor_metrics::table::{Align, Table};
//!
//! let mut t = Table::new(vec!["User", "Jobs"], vec![Align::Left, Align::Right]);
//! t.row(vec!["A".into(), "690".into()]);
//! println!("{}", t.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod availability;
pub mod buckets;
pub mod export;
pub mod plot;
pub mod replicate;
pub mod report;
pub mod summary;
pub mod table;

pub use availability::{availability_profile, lag1_autocorr, AvailabilityProfile, AvailabilitySink, StationAvailability};
pub use buckets::{by_demand_bucket, checkpoint_rate_by_demand, leverage_by_demand, wait_ratio_by_demand, BucketPoint};
pub use export::{events_from_jsonl, events_to_jsonl, CsvSeries, JsonlSink};
pub use report::render_telemetry;
pub use plot::{chart, points_block, Series};
pub use replicate::{replicate, MeanCi};
pub use summary::{heavy_users, mean_leverage, mean_wait_ratio, summarize, RunSummary};
pub use table::{num, Align, Table};
