//! ASCII line charts for experiment binaries.
//!
//! The paper's figures are line plots; the experiment binaries print both
//! the raw series (machine-readable) and a quick visual rendering so the
//! shape is checkable from a terminal.

/// One named series for a chart.
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// The glyph used for this series' points.
    pub glyph: char,
    /// y-values, one per x-position.
    pub values: &'a [f64],
}

/// Renders one or more series as an ASCII chart of the given size.
///
/// All series share the x-axis (index) and y-axis (global min/max).
/// Values are linearly binned to `width` columns by averaging, so long
/// series compress cleanly.
///
/// # Examples
///
/// ```
/// use condor_metrics::plot::{chart, Series};
///
/// let vals: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin()).collect();
/// let s = chart(&[Series { label: "sine", glyph: '*', values: &vals }], 60, 10);
/// assert!(s.contains('*'));
/// ```
pub fn chart(series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 3, "chart too small");
    assert!(!series.is_empty(), "no series");
    let max_len = series.iter().map(|s| s.values.len()).max().unwrap_or(0);
    if max_len == 0 {
        return String::from("(no data)\n");
    }
    // Global y-range over all series.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in series {
        for &v in s.values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::from("(no finite data)\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        // Bin values into `width` columns (mean per column).
        let columns: Vec<Option<f64>> = (0..width)
            .map(|c| {
                let from = c * s.values.len() / width;
                let to = (((c + 1) * s.values.len()) / width).max(from + 1);
                let slice = &s.values[from.min(s.values.len().saturating_sub(1))
                    ..to.min(s.values.len())];
                if slice.is_empty() {
                    None
                } else {
                    Some(slice.iter().sum::<f64>() / slice.len() as f64)
                }
            })
            .collect();
        for (c, v) in columns.iter().enumerate() {
            if let Some(v) = v {
                let frac = (v - lo) / (hi - lo);
                let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][c] = s.glyph;
            }
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_label = if r == 0 {
            format!("{hi:>9.2} ")
        } else if r == height - 1 {
            format!("{lo:>9.2} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&y_label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // Legend.
    out.push_str(&" ".repeat(11));
    for s in series {
        out.push_str(&format!("{} {}   ", s.glyph, s.label));
    }
    out.push('\n');
    out
}

/// Renders `(x, y)` points as a labelled series list (machine-readable
/// companion to [`chart`]).
pub fn points_block(title: &str, pts: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in pts {
        out.push_str(&format!("{x:10.3} {y:12.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let up: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let down: Vec<f64> = (0..50).map(|i| 49.0 - i as f64).collect();
        let s = chart(
            &[
                Series { label: "up", glyph: '*', values: &up },
                Series { label: "down", glyph: 'o', values: &down },
            ],
            40,
            8,
        );
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("* up"));
        assert!(s.contains("o down"));
        // Axis labels show the range.
        assert!(s.contains("49.00"));
        assert!(s.contains("0.00"));
    }

    #[test]
    fn monotone_series_renders_monotone() {
        let up: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let s = chart(&[Series { label: "up", glyph: '*', values: &up }], 40, 10);
        // First glyph in the top row must be to the right of the first
        // glyph in the bottom row.
        let lines: Vec<&str> = s.lines().collect();
        let top_pos = lines[0].find('*');
        let bottom_pos = lines[9].find('*');
        assert!(top_pos.unwrap() > bottom_pos.unwrap(), "{s}");
    }

    #[test]
    fn empty_and_flat_series_handled() {
        assert_eq!(chart(&[Series { label: "e", glyph: '*', values: &[] }], 20, 5), "(no data)\n");
        let flat = vec![5.0; 30];
        let s = chart(&[Series { label: "flat", glyph: '*', values: &flat }], 20, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn points_block_is_parseable() {
        let s = points_block("fig", &[(1.0, 2.0), (3.0, 4.0)]);
        assert!(s.starts_with("# fig\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        chart(&[Series { label: "x", glyph: '*', values: &[1.0] }], 5, 2);
    }
}
