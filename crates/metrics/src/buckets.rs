//! Demand-bucket aggregation.
//!
//! Figures 4, 8, and 9 of the paper all share one x-axis: *job service
//! demand in hours*, bucketed hourly. This module buckets completed jobs by
//! demand and averages a per-job metric within each bucket.

use condor_core::job::{Job, JobState};

/// One point of a per-demand-bucket series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketPoint {
    /// Inclusive lower edge of the demand bucket, hours.
    pub demand_lo_hours: f64,
    /// Exclusive upper edge, hours.
    pub demand_hi_hours: f64,
    /// Number of jobs in the bucket.
    pub jobs: usize,
    /// Mean of the metric over the bucket's jobs.
    pub mean: f64,
}

impl BucketPoint {
    /// Midpoint of the bucket (plotting x-coordinate).
    pub fn mid(&self) -> f64 {
        (self.demand_lo_hours + self.demand_hi_hours) / 2.0
    }
}

/// Buckets completed jobs by service demand (`bucket_hours`-wide cells up
/// to `max_hours`, with a final catch-all cell) and averages `metric` in
/// each. Jobs for which `metric` returns `None` are skipped; jobs failing
/// `filter` are skipped; empty buckets are omitted.
pub fn by_demand_bucket<F, P>(
    jobs: &[Job],
    bucket_hours: f64,
    max_hours: f64,
    filter: P,
    metric: F,
) -> Vec<BucketPoint>
where
    F: Fn(&Job) -> Option<f64>,
    P: Fn(&Job) -> bool,
{
    assert!(bucket_hours > 0.0, "zero bucket width");
    assert!(max_hours > bucket_hours, "max below one bucket");
    let n_buckets = (max_hours / bucket_hours).ceil() as usize + 1; // + overflow cell
    let mut sums = vec![0.0f64; n_buckets];
    let mut counts = vec![0usize; n_buckets];
    for j in jobs {
        if j.state != JobState::Completed || !filter(j) {
            continue;
        }
        let Some(value) = metric(j) else { continue };
        let demand_h = j.spec.demand.as_hours_f64();
        let idx = ((demand_h / bucket_hours) as usize).min(n_buckets - 1);
        sums[idx] += value;
        counts[idx] += 1;
    }
    (0..n_buckets)
        .filter(|&i| counts[i] > 0)
        .map(|i| BucketPoint {
            demand_lo_hours: i as f64 * bucket_hours,
            demand_hi_hours: if i == n_buckets - 1 {
                f64::INFINITY
            } else {
                (i + 1) as f64 * bucket_hours
            },
            jobs: counts[i],
            mean: sums[i] / counts[i] as f64,
        })
        .collect()
}

/// Mean wait ratio per demand bucket (Fig. 4).
pub fn wait_ratio_by_demand(jobs: &[Job], filter: impl Fn(&Job) -> bool) -> Vec<BucketPoint> {
    by_demand_bucket(jobs, 1.0, 14.0, filter, |j| j.wait_ratio())
}

/// Mean checkpoint rate (moves per demand-hour) per bucket (Fig. 8).
pub fn checkpoint_rate_by_demand(
    jobs: &[Job],
    filter: impl Fn(&Job) -> bool,
) -> Vec<BucketPoint> {
    by_demand_bucket(jobs, 1.0, 14.0, filter, |j| {
        Some(j.checkpoint_rate_per_hour())
    })
}

/// Mean leverage per bucket (Fig. 9).
pub fn leverage_by_demand(jobs: &[Job], filter: impl Fn(&Job) -> bool) -> Vec<BucketPoint> {
    by_demand_bucket(jobs, 1.0, 14.0, filter, |j| j.leverage())
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_core::job::{JobId, JobSpec, UserId};
    use condor_net::NodeId;
    use condor_sim::time::{SimDuration, SimTime};

    fn completed_job(id: u64, demand_h: f64, checkpoints: u32, support_s: f64) -> Job {
        let demand = SimDuration::from_hours_f64(demand_h);
        let spec = JobSpec {
            id: JobId(id),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::ZERO,
            demand,
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        };
        let mut j = Job::new(spec);
        j.accrue_run(demand, 0);
        j.charge_transfer(SimDuration::from_secs_f64(support_s));
        j.checkpoints = checkpoints;
        j.state = JobState::Completed;
        j.completed_at = Some(SimTime::ZERO + demand * 2);
        j
    }

    #[test]
    fn buckets_average_within_cells() {
        let jobs = vec![
            completed_job(0, 0.5, 1, 10.0),
            completed_job(1, 0.9, 3, 10.0),
            completed_job(2, 5.5, 2, 10.0),
        ];
        let pts = by_demand_bucket(&jobs, 1.0, 14.0, |_| true, |j| Some(f64::from(j.checkpoints)));
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].jobs, 2);
        assert_eq!(pts[0].mean, 2.0);
        assert_eq!(pts[0].demand_lo_hours, 0.0);
        assert_eq!(pts[1].jobs, 1);
        assert!((pts[1].mid() - 5.5).abs() < 0.01);
    }

    #[test]
    fn overflow_bucket_catches_long_jobs() {
        let jobs = vec![completed_job(0, 30.0, 1, 10.0)];
        let pts = by_demand_bucket(&jobs, 1.0, 14.0, |_| true, |_| Some(1.0));
        assert_eq!(pts.len(), 1);
        assert!(pts[0].demand_hi_hours.is_infinite());
    }

    #[test]
    fn incomplete_and_filtered_jobs_are_skipped() {
        let mut unfinished = completed_job(0, 2.0, 0, 10.0);
        unfinished.state = JobState::Queued;
        let jobs = vec![unfinished, completed_job(1, 2.0, 0, 10.0)];
        let all = by_demand_bucket(&jobs, 1.0, 14.0, |_| true, |_| Some(1.0));
        assert_eq!(all[0].jobs, 1);
        let none = by_demand_bucket(&jobs, 1.0, 14.0, |_| false, |_| Some(1.0));
        assert!(none.is_empty());
    }

    #[test]
    fn named_series_use_job_ledgers() {
        // 2 h job with 2 moves → 1 move/hour; wait ratio = 1 (took 4 h).
        let jobs = vec![completed_job(0, 2.0, 2, 20.0)];
        let ck = checkpoint_rate_by_demand(&jobs, |_| true);
        assert!((ck[0].mean - 1.0).abs() < 1e-9);
        let wr = wait_ratio_by_demand(&jobs, |_| true);
        assert!((wr[0].mean - 1.0).abs() < 1e-9);
        let lev = leverage_by_demand(&jobs, |_| true);
        // 7200 s remote / 20 s support = 360.
        assert!((lev[0].mean - 360.0).abs() < 1.0, "{}", lev[0].mean);
    }
}
