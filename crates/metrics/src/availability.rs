//! Workstation-availability statistics, streamed or replayed.
//!
//! The paper's premises come from its companion study (Mutka & Livny,
//! *Profiling Workstations' Available Capacity*, ref. \[1\]): stations are
//! available ~70% of the time, available intervals are often long, and
//! interval lengths are positively autocorrelated ("workstations with long
//! available intervals tend to have their next available interval long").
//! This module recomputes those statistics from a simulated run's
//! owner-activity events, validating the substituted owner model against
//! the properties the scheduler's results depend on.
//!
//! Two entry points share one implementation:
//!
//! * [`AvailabilitySink`] — a streaming [`TraceSink`]: attach it to a run
//!   (works with `record_trace: false`) and read the profile afterwards;
//! * [`availability_profile`] — the legacy replay over a buffered
//!   [`RunOutput`] trace, now a thin wrapper that feeds the sink.

use condor_core::cluster::RunOutput;
use condor_core::telemetry::TraceSink;
use condor_core::trace::{TraceEvent, TraceKind};
use condor_net::NodeId;
use condor_sim::stats::Running;
use condor_sim::time::SimTime;

/// Availability statistics of one station.
#[derive(Debug, Clone, PartialEq)]
pub struct StationAvailability {
    /// The station.
    pub station: NodeId,
    /// Fraction of the horizon the owner was away.
    pub available_fraction: f64,
    /// Completed idle (available) intervals observed.
    pub intervals: usize,
    /// Mean idle-interval length, hours.
    pub mean_interval_hours: f64,
    /// Lag-1 autocorrelation of consecutive idle-interval lengths
    /// (`None` with fewer than 8 intervals or zero variance).
    pub interval_autocorr: Option<f64>,
}

/// Fleet-wide availability profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityProfile {
    /// Per-station statistics, in station order.
    pub stations: Vec<StationAvailability>,
    /// Mean available fraction across stations.
    pub mean_available: f64,
    /// Mean idle-interval length across all intervals, hours.
    pub mean_interval_hours: f64,
    /// Mean per-station lag-1 autocorrelation (stations with enough data).
    pub mean_autocorr: f64,
}

/// Per-station replay state.
#[derive(Debug, Default, Clone)]
struct Replay {
    idle_since: Option<SimTime>,
    active_ms: u64,
    last_transition: Option<SimTime>,
    idle_intervals: Vec<f64>, // hours
}

/// Streams owner-activity events into per-station availability statistics.
///
/// Attach to a run via
/// [`run_cluster_with_sinks`](condor_core::cluster::run_cluster_with_sinks)
/// (through a [`SharedSink`](condor_core::telemetry::SharedSink) handle to
/// keep access), then call [`profile`](AvailabilitySink::profile). Memory
/// is O(stations + idle intervals) — no full trace is buffered, so it
/// works with `record_trace: false` at any horizon.
#[derive(Debug, Clone)]
pub struct AvailabilitySink {
    replays: Vec<Replay>,
    finished_at: SimTime,
}

impl AvailabilitySink {
    /// Creates a sink for a fleet of `stations` machines.
    pub fn new(stations: usize) -> Self {
        AvailabilitySink {
            replays: vec![
                Replay {
                    // Stations start idle unless the event stream says
                    // otherwise; the first transition fixes the initial
                    // state retroactively.
                    idle_since: Some(SimTime::ZERO),
                    ..Replay::default()
                };
                stations
            ],
            finished_at: SimTime::ZERO,
        }
    }

    /// The profile over `[0, horizon]`, using the horizon passed to
    /// [`TraceSink::finish`] (or the latest observed transition when the
    /// sink was fed manually).
    pub fn profile(&self) -> AvailabilityProfile {
        self.profile_at(self.finished_at)
    }

    /// The profile with an explicit horizon.
    pub fn profile_at(&self, horizon: SimTime) -> AvailabilityProfile {
        let horizon_ms = horizon.as_millis() as f64;
        let mut stations = Vec::with_capacity(self.replays.len());
        let mut all_intervals = Running::new();
        let mut autocorrs = Running::new();
        for (i, r) in self.replays.iter().enumerate() {
            let available = 1.0 - r.active_ms as f64 / horizon_ms;
            let mut lens = Running::new();
            for &v in &r.idle_intervals {
                lens.push(v);
                all_intervals.push(v);
            }
            let autocorr = lag1_autocorr(&r.idle_intervals);
            if let Some(a) = autocorr {
                autocorrs.push(a);
            }
            stations.push(StationAvailability {
                station: NodeId::new(i as u32),
                available_fraction: available,
                intervals: r.idle_intervals.len(),
                mean_interval_hours: lens.mean(),
                interval_autocorr: autocorr,
            });
        }
        AvailabilityProfile {
            mean_available: stations.iter().map(|s| s.available_fraction).sum::<f64>()
                / stations.len().max(1) as f64,
            mean_interval_hours: all_intervals.mean(),
            mean_autocorr: autocorrs.mean(),
            stations,
        }
    }
}

impl TraceSink for AvailabilitySink {
    fn record(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::OwnerActive { station } => {
                let Some(r) = self.replays.get_mut(station.as_usize()) else {
                    return;
                };
                if let Some(t) = r.idle_since.take() {
                    r.idle_intervals.push(ev.at.since(t).as_hours_f64());
                }
                r.last_transition = Some(ev.at);
            }
            TraceKind::OwnerIdle { station } => {
                let Some(r) = self.replays.get_mut(station.as_usize()) else {
                    return;
                };
                if let Some(t) = r.last_transition {
                    r.active_ms += ev.at.since(t).as_millis();
                } else {
                    // Station started active: the whole prefix was active.
                    r.active_ms += ev.at.as_millis();
                    r.idle_since = None;
                }
                r.idle_since = Some(ev.at);
                r.last_transition = Some(ev.at);
            }
            _ => {}
        }
    }

    fn finish(&mut self, at: SimTime) {
        self.finished_at = at;
    }
}

/// Computes the availability profile from a run's buffered owner-activity
/// trace.
///
/// Requires the run to have been recorded with tracing enabled; for
/// trace-free runs attach an [`AvailabilitySink`] instead.
pub fn availability_profile(out: &RunOutput) -> AvailabilityProfile {
    let mut sink = AvailabilitySink::new(out.stations);
    for ev in out.trace.events() {
        sink.record(ev);
    }
    sink.finish(out.horizon);
    sink.profile()
}

/// Lag-1 autocorrelation; `None` with fewer than 8 samples or degenerate
/// variance.
pub fn lag1_autocorr(xs: &[f64]) -> Option<f64> {
    if xs.len() < 8 {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var < 1e-12 {
        return None;
    }
    let cov = (0..n - 1)
        .map(|i| (xs[i] - mean) * (xs[i + 1] - mean))
        .sum::<f64>()
        / (n - 1) as f64;
    Some(cov / var)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use condor_core::cluster::{run_cluster, run_cluster_with_sinks};
    use condor_core::config::ClusterConfig;
    use condor_core::telemetry::SharedSink;
    use condor_sim::time::SimDuration;

    #[test]
    fn profile_matches_run_accounting() {
        let config = ClusterConfig {
            stations: 8,
            ..ClusterConfig::default()
        };
        let out = run_cluster(config, Vec::new(), SimDuration::from_days(14));
        let profile = availability_profile(&out);
        assert_eq!(profile.stations.len(), 8);
        // Availability from the trace must agree with the run's own
        // bucket accounting within rounding.
        let from_buckets =
            out.available_station_hours() / (out.horizon.as_hours_f64() * out.stations as f64);
        assert!(
            (profile.mean_available - from_buckets).abs() < 0.02,
            "trace {} vs buckets {}",
            profile.mean_available,
            from_buckets
        );
        for s in &profile.stations {
            assert!((0.0..=1.0).contains(&s.available_fraction));
            assert!(s.intervals > 0, "{s:?}");
            assert!(s.mean_interval_hours > 0.0);
        }
    }

    #[test]
    fn streaming_sink_equals_trace_replay() {
        let config = ClusterConfig {
            stations: 6,
            seed: 77,
            ..ClusterConfig::default()
        };
        let sink = SharedSink::new(AvailabilitySink::new(6));
        let out = run_cluster_with_sinks(
            config,
            Vec::new(),
            SimDuration::from_days(10),
            vec![Box::new(sink.clone())],
        );
        let streamed = sink.with(|s| s.profile());
        let replayed = availability_profile(&out);
        assert_eq!(streamed, replayed);
    }

    #[test]
    fn default_owner_model_shows_positive_autocorrelation() {
        // Long horizon for a stable estimate.
        let config = ClusterConfig {
            stations: 12,
            ..ClusterConfig::default()
        };
        let out = run_cluster(config, Vec::new(), SimDuration::from_days(60));
        let profile = availability_profile(&out);
        assert!(
            profile.mean_autocorr > 0.02,
            "regime persistence must show up as autocorrelation: {}",
            profile.mean_autocorr
        );
        // The paper's companion study: available ~70%+ of the time.
        assert!(
            (0.6..=0.9).contains(&profile.mean_available),
            "availability {}",
            profile.mean_available
        );
    }

    #[test]
    fn autocorr_edge_cases() {
        assert_eq!(lag1_autocorr(&[1.0; 4]), None, "too few");
        assert_eq!(lag1_autocorr(&[3.0; 20]), None, "zero variance");
        // Alternating series: strongly negative.
        let alt: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(lag1_autocorr(&alt).unwrap() < -0.9);
        // Slowly varying series: strongly positive.
        let slow: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin()).collect();
        assert!(lag1_autocorr(&slow).unwrap() > 0.5);
    }
}
