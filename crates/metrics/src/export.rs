//! CSV export of figure data, for plotting outside the terminal.
//!
//! The experiment binaries print ASCII renderings; this module writes the
//! same series as plain CSV so the figures can be regenerated in gnuplot,
//! matplotlib, or a spreadsheet.

use std::io::Write;
use std::path::Path;

/// A rectangular data set destined for one CSV file.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvSeries {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row must match the column count.
    pub rows: Vec<Vec<f64>>,
}

impl CsvSeries {
    /// Creates an empty series with the given columns.
    pub fn new(columns: &[&str]) -> CsvSeries {
        assert!(!columns.is_empty(), "CSV needs columns");
        CsvSeries {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn row(&mut self, values: &[f64]) -> &mut CsvSeries {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(values.to_vec());
        self
    }

    /// Builds a series from two parallel columns (the common x/y case).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_xy(x_name: &str, y_name: &str, xs: &[f64], ys: &[f64]) -> CsvSeries {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        let mut s = CsvSeries::new(&[x_name, y_name]);
        for (&x, &y) in xs.iter().zip(ys) {
            s.row(&[x, y]);
        }
        s
    }

    /// Renders the CSV text (header + rows, `\n`-terminated).
    pub fn render(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut s = CsvSeries::new(&["hour", "queue"]);
        s.row(&[0.0, 3.0]).row(&[1.0, 4.5]);
        let text = s.render();
        assert_eq!(text, "hour,queue\n0,3\n1,4.5\n");
    }

    #[test]
    fn from_xy_zips() {
        let s = CsvSeries::from_xy("x", "y", &[1.0, 2.0], &[10.0, 20.0]);
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[1], vec![2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        CsvSeries::new(&["a", "b"]).row(&[1.0]);
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join(format!("condor-export-{}", std::process::id()));
        let path = dir.join("sub/fig.csv");
        let mut s = CsvSeries::new(&["v"]);
        s.row(&[7.0]);
        s.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "v\n7\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
