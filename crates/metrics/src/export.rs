//! CSV and JSONL export of run data, for analysis outside the terminal.
//!
//! The experiment binaries print ASCII renderings; this module writes the
//! same series as plain CSV so the figures can be regenerated in gnuplot,
//! matplotlib, or a spreadsheet — and streams event traces as JSONL (one
//! flat JSON object per line) via [`JsonlSink`], the format every log
//! toolchain ingests.

use std::io::Write;
use std::path::Path;

use condor_core::spans::SpanLog;
use condor_core::telemetry::TraceSink;
use condor_core::trace::{TraceEvent, TraceParseError};
use condor_sim::time::SimTime;

/// A rectangular data set destined for one CSV file.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvSeries {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row must match the column count.
    pub rows: Vec<Vec<f64>>,
}

impl CsvSeries {
    /// Creates an empty series with the given columns.
    pub fn new(columns: &[&str]) -> CsvSeries {
        assert!(!columns.is_empty(), "CSV needs columns");
        CsvSeries {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn row(&mut self, values: &[f64]) -> &mut CsvSeries {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(values.to_vec());
        self
    }

    /// Builds a series from two parallel columns (the common x/y case).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_xy(x_name: &str, y_name: &str, xs: &[f64], ys: &[f64]) -> CsvSeries {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        let mut s = CsvSeries::new(&[x_name, y_name]);
        for (&x, &y) in xs.iter().zip(ys) {
            s.row(&[x, y]);
        }
        s
    }

    /// Renders the CSV text (header + rows, `\n`-terminated).
    pub fn render(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())
    }
}

/// A [`TraceSink`] that streams events as JSONL — one
/// [`TraceEvent::to_jsonl`] line per event — into any writer.
///
/// I/O errors do not panic mid-simulation: the first error is stored, all
/// further events are dropped, and [`error`](JsonlSink::error) exposes it
/// for the caller to check after the run. `finish` flushes the writer.
///
/// # Examples
///
/// ```
/// use condor_core::telemetry::TraceSink;
/// use condor_metrics::export::{events_from_jsonl, JsonlSink};
/// use condor_core::trace::{TraceEvent, TraceKind};
/// use condor_core::job::JobId;
/// use condor_sim::time::SimTime;
///
/// let mut sink = JsonlSink::new(Vec::new());
/// sink.record(&TraceEvent {
///     at: SimTime::from_secs(5),
///     kind: TraceKind::JobArrived { job: JobId(0) },
/// });
/// sink.finish(SimTime::from_secs(10));
/// let text = String::from_utf8(sink.into_writer()).unwrap();
/// assert_eq!(events_from_jsonl(&text).unwrap().len(), 1);
/// ```
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<std::io::Error>,
    /// Reused per-event render buffer, so steady-state streaming does not
    /// allocate per line.
    line: String,
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("written", &self.written)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, written: 0, error: None, line: String::with_capacity(128) }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit, if any. While set, events are dropped.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Recovers the writer (e.g. the byte buffer when writing in memory).
    pub fn into_writer(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        ev.write_jsonl(&mut self.line);
        self.line.push('\n');
        match self.writer.write_all(self.line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn finish(&mut self, _at: SimTime) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Renders events as JSONL text (one line per event, `\n`-terminated).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        ev.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

/// Parses JSONL text back into events, skipping blank lines.
///
/// # Errors
///
/// Returns the first [`TraceParseError`] hit.
pub fn events_from_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_jsonl)
        .collect()
}

// ----- Perfetto / Chrome trace-event export ------------------------------

/// Synthetic process id grouping job tracks in the trace viewer.
const CHROME_PID_JOBS: u32 = 1;
/// Synthetic process id grouping station tracks.
const CHROME_PID_STATIONS: u32 = 2;

fn chrome_us(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

fn chrome_metadata(out: &mut Vec<String>, pid: u32, tid: Option<u64>, name: &str) {
    match tid {
        None => out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        )),
        Some(tid) => out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        )),
    }
}

/// Renders a [`SpanLog`] in the Chrome trace-event JSON format, loadable
/// by Perfetto (`ui.perfetto.dev`) and `chrome://tracing`.
///
/// Layout:
/// * process 1, **jobs** — one track per job; its lifecycle spans become
///   complete (`ph:"X"`) events named after the phase, and its preemption
///   markers instant (`ph:"i"`) events;
/// * process 2, **stations** — one track per machine that ever hosted a
///   foreign job; occupancy intervals become complete events named
///   `job <id>`.
///
/// Timestamps and durations are microseconds of simulation time, per the
/// format's convention.
///
/// # Examples
///
/// ```
/// use condor_core::spans::SpanSink;
/// use condor_core::telemetry::TraceSink;
/// use condor_core::trace::{TraceEvent, TraceKind};
/// use condor_core::job::JobId;
/// use condor_metrics::export::spans_to_chrome_trace;
/// use condor_sim::time::SimTime;
///
/// let mut sink = SpanSink::new();
/// sink.record(&TraceEvent {
///     at: SimTime::from_secs(1),
///     kind: TraceKind::JobArrived { job: JobId(0) },
/// });
/// sink.finish(SimTime::from_secs(2));
/// let json = spans_to_chrome_trace(sink.log());
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn spans_to_chrome_trace(log: &SpanLog) -> String {
    let mut events: Vec<String> = Vec::new();
    chrome_metadata(&mut events, CHROME_PID_JOBS, None, "jobs");
    chrome_metadata(&mut events, CHROME_PID_STATIONS, None, "stations");
    for (&job, js) in &log.jobs {
        chrome_metadata(
            &mut events,
            CHROME_PID_JOBS,
            Some(job.0),
            &format!("job {}", job.0),
        );
        for s in &js.spans {
            let args = match s.station {
                Some(n) => format!(",\"args\":{{\"station\":{}}}", n.index()),
                None => String::new(),
            };
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{CHROME_PID_JOBS},\"tid\":{},\"ts\":{},\
                 \"dur\":{},\"cat\":\"phase\",\"name\":\"{}\"{args}}}",
                job.0,
                chrome_us(s.from),
                chrome_us(s.until).saturating_sub(chrome_us(s.from)),
                s.phase.name(),
            ));
        }
    }
    for m in &log.markers {
        events.push(format!(
            "{{\"ph\":\"i\",\"pid\":{CHROME_PID_JOBS},\"tid\":{},\"ts\":{},\"s\":\"t\",\
             \"cat\":\"marker\",\"name\":\"{}\",\"args\":{{\"station\":{}}}}}",
            m.job.0,
            chrome_us(m.at),
            m.label,
            m.station.index(),
        ));
    }
    for (&station, occupancies) in &log.stations {
        chrome_metadata(
            &mut events,
            CHROME_PID_STATIONS,
            Some(station.index() as u64),
            &format!("station {}", station.index()),
        );
        for o in occupancies {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{CHROME_PID_STATIONS},\"tid\":{},\"ts\":{},\
                 \"dur\":{},\"cat\":\"occupancy\",\"name\":\"job {}\",\
                 \"args\":{{\"job\":{}}}}}",
                station.index(),
                chrome_us(o.from),
                chrome_us(o.until).saturating_sub(chrome_us(o.from)),
                o.job.0,
                o.job.0,
            ));
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    /// Minimal recursive-descent JSON syntax check (no value semantics):
    /// enough to guarantee a viewer's parser will accept the export.
    fn check_json(text: &str) {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && (b[i] as char).is_ascii_whitespace() {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> usize {
            let i = skip_ws(b, i);
            match b.get(i) {
                Some(b'{') => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return i + 1;
                    }
                    loop {
                        i = string(b, skip_ws(b, i));
                        i = skip_ws(b, i);
                        assert_eq!(b.get(i), Some(&b':'), "expected ':' at {i}");
                        i = value(b, i + 1);
                        i = skip_ws(b, i);
                        match b.get(i) {
                            Some(b',') => i += 1,
                            Some(b'}') => return i + 1,
                            other => panic!("expected ',' or '}}' at {i}, got {other:?}"),
                        }
                    }
                }
                Some(b'[') => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return i + 1;
                    }
                    loop {
                        i = value(b, i);
                        i = skip_ws(b, i);
                        match b.get(i) {
                            Some(b',') => i += 1,
                            Some(b']') => return i + 1,
                            other => panic!("expected ',' or ']' at {i}, got {other:?}"),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    let mut i = i + 1;
                    while i < b.len()
                        && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                    {
                        i += 1;
                    }
                    i
                }
                _ if b[i..].starts_with(b"true") => i + 4,
                _ if b[i..].starts_with(b"false") => i + 5,
                _ if b[i..].starts_with(b"null") => i + 4,
                other => panic!("unexpected JSON value at {i}: {other:?}"),
            }
        }
        fn string(b: &[u8], i: usize) -> usize {
            assert_eq!(b.get(i), Some(&b'"'), "expected '\"' at {i}");
            let mut i = i + 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => return i + 1,
                    _ => i += 1,
                }
            }
            panic!("unterminated string");
        }
        let b = text.as_bytes();
        let end = skip_ws(b, value(b, 0));
        assert_eq!(end, b.len(), "trailing garbage after JSON value");
    }

    #[test]
    fn chrome_trace_from_a_live_run_is_valid_json() {
        use condor_core::cluster::run_cluster_with_sinks;
        use condor_core::config::ClusterConfig;
        use condor_core::job::{JobId, JobSpec, UserId};
        use condor_core::spans::SpanSink;
        use condor_core::telemetry::SharedSink;
        use condor_net::NodeId;
        use condor_sim::time::SimDuration;

        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec {
                id: JobId(i),
                user: UserId(0),
                home: NodeId::new((i % 4) as u32),
                arrival: SimTime::from_hours(i),
                demand: SimDuration::from_hours(2),
                image_bytes: 300_000,
                syscalls_per_cpu_sec: 0.2,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: Default::default(),
                speedup: Default::default(),
            })
            .collect();
        let spans = SharedSink::new(SpanSink::new());
        let _ = run_cluster_with_sinks(
            ClusterConfig { stations: 4, seed: 11, ..ClusterConfig::default() },
            jobs,
            SimDuration::from_days(2),
            vec![Box::new(spans.clone())],
        );
        let log = spans.with(|s| s.log().clone());
        assert!(!log.jobs.is_empty());
        let json = spans_to_chrome_trace(&log);
        check_json(&json);
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "complete events present");
        // Every span of every job surfaced as one complete event.
        let total_spans: usize = log.jobs.values().map(|j| j.spans.len()).sum();
        let total_occ: usize = log.stations.values().map(|o| o.len()).sum();
        let x_events = json.matches("\"ph\":\"X\"").count();
        assert_eq!(x_events, total_spans + total_occ);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), log.markers.len());
    }

    #[test]
    fn chrome_trace_of_empty_log_is_valid() {
        let json = spans_to_chrome_trace(&SpanLog::default());
        check_json(&json);
        assert!(json.contains("\"jobs\"") && json.contains("\"stations\""));
    }

    #[test]
    fn renders_header_and_rows() {
        let mut s = CsvSeries::new(&["hour", "queue"]);
        s.row(&[0.0, 3.0]).row(&[1.0, 4.5]);
        let text = s.render();
        assert_eq!(text, "hour,queue\n0,3\n1,4.5\n");
    }

    #[test]
    fn from_xy_zips() {
        let s = CsvSeries::from_xy("x", "y", &[1.0, 2.0], &[10.0, 20.0]);
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[1], vec![2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        CsvSeries::new(&["a", "b"]).row(&[1.0]);
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join(format!("condor-export-{}", std::process::id()));
        let path = dir.join("sub/fig.csv");
        let mut s = CsvSeries::new(&["v"]);
        s.row(&[7.0]);
        s.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "v\n7\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_sink_round_trips_a_run() {
        use condor_core::cluster::{run_cluster, run_cluster_with_sinks};
        use condor_core::config::ClusterConfig;
        use condor_core::telemetry::SharedSink;
        use condor_sim::time::SimDuration;

        let config = || ClusterConfig { stations: 5, seed: 9, ..ClusterConfig::default() };
        let sink = SharedSink::new(JsonlSink::new(Vec::new()));
        let _ = run_cluster_with_sinks(
            config(),
            Vec::new(),
            SimDuration::from_days(2),
            vec![Box::new(sink.clone())],
        );
        let bytes = sink.try_into_inner().expect("sole handle").into_writer();
        let text = String::from_utf8(bytes).unwrap();
        let decoded = events_from_jsonl(&text).expect("every line decodes");

        // The decoded stream is exactly the legacy trace of the same run.
        let reference = run_cluster(config(), Vec::new(), SimDuration::from_days(2));
        assert_eq!(decoded, reference.trace.events());
        assert!(!decoded.is_empty());
    }

    #[test]
    fn jsonl_sink_swallows_io_errors() {
        use condor_core::job::JobId;
        use condor_core::telemetry::TraceSink;
        use condor_core::trace::TraceKind;

        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        let ev = TraceEvent { at: SimTime::ZERO, kind: TraceKind::JobArrived { job: JobId(0) } };
        sink.record(&ev);
        sink.record(&ev);
        assert_eq!(sink.written(), 0);
        assert!(sink.error().is_some());
    }
}
