//! Whole-run summary statistics (the numbers quoted in §3 of the paper).

use condor_core::cluster::RunOutput;
use condor_core::job::{Job, JobState, UserId};
use condor_sim::stats::Running;

/// Headline statistics of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Stations simulated.
    pub stations: usize,
    /// Observation length, hours.
    pub horizon_hours: f64,
    /// Jobs submitted (admitted).
    pub jobs_submitted: usize,
    /// Jobs completed within the window.
    pub jobs_completed: usize,
    /// Station-hours available for remote execution (owner idle).
    pub available_hours: f64,
    /// CPU-hours consumed by remote execution.
    pub consumed_hours: f64,
    /// Fraction of fleet time the stations were available.
    pub availability: f64,
    /// Mean local (owner) utilization.
    pub local_utilization: f64,
    /// Mean system utilization (local + remote).
    pub system_utilization: f64,
    /// Mean wait ratio over completed jobs.
    pub mean_wait_ratio: f64,
    /// Mean leverage over completed jobs that consumed support.
    pub mean_leverage: f64,
    /// Mean checkpoint migrations per completed job.
    pub mean_checkpoints: f64,
    /// Placements performed.
    pub placements: u64,
    /// Checkpoint migrations performed.
    pub migrations: u64,
    /// Autonomous local starts while the coordinator was unreachable
    /// (nonzero only under chaos injection).
    pub local_starts: u64,
    /// Checkpoint transfers re-sent after corruption (nonzero only under
    /// chaos injection).
    pub ckpt_retries: u64,
    /// Speculative replicas spawned (nonzero only under the redundant policy).
    pub replicas_spawned: u64,
    /// Speculative replicas cancelled; `replicas_spawned - replicas_cancelled`
    /// is the number of jobs a replica finished first.
    pub replicas_cancelled: u64,
    /// CPU-hours burned by cancelled replicas (the price of speculation).
    pub wasted_replica_hours: f64,
}

/// Computes the summary for a run.
pub fn summarize(out: &RunOutput) -> RunSummary {
    let completed: Vec<&Job> = out.completed_jobs().collect();
    let mut wait = Running::new();
    let mut lev = Running::new();
    let mut cks = Running::new();
    for j in &completed {
        if let Some(w) = j.wait_ratio() {
            wait.push(w);
        }
        if let Some(l) = j.leverage() {
            lev.push(l);
        }
        cks.push(f64::from(j.checkpoints));
    }
    let fleet_hours = out.horizon.as_hours_f64() * out.stations as f64;
    RunSummary {
        stations: out.stations,
        horizon_hours: out.horizon.as_hours_f64(),
        jobs_submitted: out.jobs.iter().filter(|j| !j.rejected).count(),
        jobs_completed: completed.len(),
        available_hours: out.available_station_hours(),
        consumed_hours: out.consumed_cpu_hours(),
        availability: out.available_station_hours() / fleet_hours,
        local_utilization: out.mean_local_utilization(),
        system_utilization: out.mean_system_utilization(),
        mean_wait_ratio: wait.mean(),
        mean_leverage: lev.mean(),
        mean_checkpoints: cks.mean(),
        placements: out.totals.placements,
        migrations: out.totals.migrations,
        local_starts: out.totals.local_starts,
        ckpt_retries: out.totals.ckpt_retries,
        replicas_spawned: out.totals.replicas_spawned,
        replicas_cancelled: out.totals.replicas_cancelled,
        wasted_replica_hours: out.totals.wasted_replica_work as f64 / 3_600_000.0,
    }
}

/// Identifies the *heavy* users of a run: anyone holding at least
/// `share_threshold` of the total submitted demand (the paper's user A held
/// 90%). Everyone else is light.
pub fn heavy_users(jobs: &[Job], share_threshold: f64) -> Vec<UserId> {
    use std::collections::BTreeMap;
    let mut demand: BTreeMap<UserId, f64> = BTreeMap::new();
    let mut total = 0.0;
    for j in jobs {
        let h = j.spec.demand.as_hours_f64();
        *demand.entry(j.spec.user).or_insert(0.0) += h;
        total += h;
    }
    if total <= 0.0 {
        return Vec::new();
    }
    demand
        .into_iter()
        .filter(|(_, d)| d / total >= share_threshold)
        .map(|(u, _)| u)
        .collect()
}

/// Mean wait ratio of completed jobs passing `filter`.
pub fn mean_wait_ratio(jobs: &[Job], filter: impl Fn(&Job) -> bool) -> Option<f64> {
    let mut acc = Running::new();
    for j in jobs {
        if j.state == JobState::Completed && filter(j) {
            if let Some(w) = j.wait_ratio() {
                acc.push(w);
            }
        }
    }
    (acc.count() > 0).then(|| acc.mean())
}

/// Mean leverage of completed jobs passing `filter`.
pub fn mean_leverage(jobs: &[Job], filter: impl Fn(&Job) -> bool) -> Option<f64> {
    let mut acc = Running::new();
    for j in jobs {
        if j.state == JobState::Completed && filter(j) {
            if let Some(l) = j.leverage() {
                acc.push(l);
            }
        }
    }
    (acc.count() > 0).then(|| acc.mean())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use condor_core::cluster::run_cluster;
    use condor_core::config::ClusterConfig;
    use condor_core::job::{JobId, JobSpec};
    use condor_net::NodeId;
    use condor_sim::time::{SimDuration, SimTime};

    fn small_run() -> RunOutput {
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec {
                id: JobId(i),
                user: UserId((i % 2) as u32),
                home: NodeId::new((i % 2) as u32),
                arrival: SimTime::from_hours(i),
                demand: SimDuration::from_hours(if i % 2 == 0 { 8 } else { 1 }),
                image_bytes: 500_000,
                syscalls_per_cpu_sec: 1.0,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: Default::default(),
                speedup: Default::default(),
            })
            .collect();
        run_cluster(ClusterConfig { stations: 5, ..ClusterConfig::default() }, jobs, SimDuration::from_days(5))
    }

    #[test]
    fn summary_fields_are_consistent() {
        let out = small_run();
        let s = summarize(&out);
        assert_eq!(s.stations, 5);
        assert_eq!(s.horizon_hours, 120.0);
        assert_eq!(s.jobs_submitted, 6);
        assert!(s.jobs_completed <= s.jobs_submitted);
        assert!((0.0..=1.0).contains(&s.availability));
        assert!(s.system_utilization >= s.local_utilization);
        assert!(s.consumed_hours <= s.available_hours + 1e-9);
        assert_eq!(s.placements, out.totals.placements);
    }

    #[test]
    fn heavy_user_detection() {
        let out = small_run();
        // User 0 submits 3×8 h = 24 h of 27 h total → ~89% share.
        let heavy = heavy_users(&out.jobs, 0.5);
        assert_eq!(heavy, vec![UserId(0)]);
        let none = heavy_users(&out.jobs, 0.95);
        assert!(none.is_empty());
        assert!(heavy_users(&[], 0.5).is_empty());
    }

    #[test]
    fn filtered_means_respect_filters() {
        let out = small_run();
        let all = mean_wait_ratio(&out.jobs, |_| true);
        let light = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(1));
        assert!(all.is_some());
        assert!(light.is_some());
        let nobody = mean_wait_ratio(&out.jobs, |_| false);
        assert!(nobody.is_none());
        assert!(mean_leverage(&out.jobs, |_| true).unwrap() > 0.0);
    }
}
