//! Multi-seed replication: means with confidence intervals.
//!
//! Single simulation runs are noisy; the paper itself reports one month of
//! one reality. For ablations (history-aware placement, eviction
//! strategies) we replicate across seeds and report a mean with a 95%
//! confidence half-width, so "A beats B" claims are statistically
//! defensible.
//!
//! Replications are embarrassingly parallel — each seed drives an
//! independent simulation — so [`replicate_par`] fans the seeds out across
//! threads. Results are aggregated **in seed order**, which makes the
//! parallel path bit-identical to the serial [`replicate`]: floating-point
//! summation order, and therefore every digit of the reported mean and
//! half-width, does not depend on thread scheduling.

use condor_sim::stats::Running;

/// Two-sided 95% Student-t critical values, indexed by degrees of freedom
/// (slot 0 unused). Small replication counts (the common case here: 4–8
/// seeds) need the t distribution — the normal approximation's 1.96
/// understates the half-width by up to 60% at n=4.
const T_95: [f64; 31] = [
    f64::NAN, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
    2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
    2.042,
];

/// The 95% two-sided Student-t critical value for `df` degrees of freedom.
///
/// Above the table, values round *down* to the nearest tabulated df
/// (30, 40, 60, 120), which rounds the critical value — and hence the
/// reported interval — conservatively up.
fn t_critical_95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_95[df as usize],
        31..=39 => T_95[30],
        40..=59 => 2.021,
        60..=119 => 2.000,
        _ => 1.980,
    }
}

/// A replicated estimate: mean over independent runs plus a confidence
/// half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Mean over replications.
    pub mean: f64,
    /// 95% confidence half-width (Student-t on n−1 degrees of freedom;
    /// replications are independent seeds).
    pub half_width: f64,
    /// Number of replications.
    pub n: u64,
}

impl MeanCi {
    /// Computes the estimate from per-replication values.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn from_values(values: &[f64]) -> MeanCi {
        assert!(!values.is_empty(), "no replications");
        let r: Running = values.iter().copied().collect();
        let n = r.count();
        let half_width = if n < 2 {
            f64::INFINITY
        } else {
            t_critical_95(n - 1) * (r.sample_variance() / n as f64).sqrt()
        };
        MeanCi {
            mean: r.mean(),
            half_width,
            n,
        }
    }

    /// Whether this estimate is significantly below `other` (intervals do
    /// not overlap).
    pub fn significantly_below(&self, other: &MeanCi) -> bool {
        self.mean + self.half_width < other.mean - other.half_width
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.half_width.is_finite() {
            write!(f, "{:.2} ± {:.2}", self.mean, self.half_width)
        } else {
            write!(f, "{:.2} (n=1)", self.mean)
        }
    }
}

/// Runs `f` once per seed, serially, and aggregates the returned metric.
pub fn replicate<F>(seeds: &[u64], mut f: F) -> MeanCi
where
    F: FnMut(u64) -> f64,
{
    let values: Vec<f64> = seeds.iter().map(|&s| f(s)).collect();
    MeanCi::from_values(&values)
}

/// Runs `f` once per seed across [`worker_threads`] threads and aggregates
/// the returned metric.
///
/// Bit-identical to [`replicate`]: results are collected in seed order
/// before aggregation, so the output carries no trace of thread timing.
pub fn replicate_par<F>(seeds: &[u64], f: F) -> MeanCi
where
    F: Fn(u64) -> f64 + Sync,
{
    MeanCi::from_values(&par_map(seeds, |&s| f(s)))
}

/// Maps `f` over `items` on a scoped thread pool, returning results in
/// item order.
///
/// Each item drives one independent closure call (typically one simulation
/// run keyed by a seed or configuration); contiguous chunks of the item
/// list go to each worker and land in pre-assigned output slots, so the
/// returned `Vec` is exactly what the serial `items.iter().map(f)` would
/// produce, regardless of which worker finishes first.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = worker_threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (item_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("worker filled every slot"))
        .collect()
}

/// The replication worker count: `CONDOR_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism (1 if unknown).
pub fn worker_threads() -> usize {
    match std::env::var("CONDOR_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_half_width() {
        let ci = MeanCi::from_values(&[10.0, 12.0, 8.0, 10.0]);
        assert_eq!(ci.mean, 10.0);
        assert_eq!(ci.n, 4);
        // s² = (0+4+4+0)/3 = 8/3; hw = t(df=3)·sqrt(8/12) = 3.182·0.8165.
        assert!((ci.half_width - 3.182 * (8.0f64 / 12.0).sqrt()).abs() < 1e-9);
        assert_eq!(format!("{ci}"), format!("10.00 ± {:.2}", ci.half_width));
    }

    #[test]
    fn t_critical_shrinks_toward_normal() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(3) - 3.182).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        // Step function is monotone non-increasing in df.
        let mut prev = f64::INFINITY;
        for df in 0..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t must not grow with df (df={df})");
            prev = t;
        }
        assert!((t_critical_95(10_000) - 1.980).abs() < 1e-9);
    }

    #[test]
    fn single_replication_has_infinite_width() {
        let ci = MeanCi::from_values(&[5.0]);
        assert_eq!(ci.mean, 5.0);
        assert!(ci.half_width.is_infinite());
        assert!(format!("{ci}").contains("n=1"));
    }

    #[test]
    fn significance_requires_separation() {
        let low = MeanCi { mean: 1.0, half_width: 0.5, n: 10 };
        let high = MeanCi { mean: 3.0, half_width: 0.5, n: 10 };
        assert!(low.significantly_below(&high));
        assert!(!high.significantly_below(&low));
        let wide = MeanCi { mean: 3.0, half_width: 3.0, n: 3 };
        assert!(!low.significantly_below(&wide), "overlapping intervals");
    }

    #[test]
    fn replicate_runs_per_seed() {
        let ci = replicate(&[1, 2, 3, 4], |s| s as f64);
        assert_eq!(ci.mean, 2.5);
        assert_eq!(ci.n, 4);
    }

    #[test]
    fn par_map_preserves_seed_order() {
        let seeds: Vec<u64> = (0..37).collect();
        let out = par_map(&seeds, |&s| s * 10);
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_replication_is_bit_identical_to_serial() {
        let seeds: Vec<u64> = (1..=11).collect();
        // A deliberately ill-conditioned metric: summation order matters at
        // the ULP level, so any reordering would show up in the bits.
        let metric = |s: u64| ((s as f64) * 1e-3).sin() * 1e6 + 1.0 / (s as f64);
        let serial = replicate(&seeds, metric);
        let parallel = replicate_par(&seeds, metric);
        assert_eq!(serial.mean.to_bits(), parallel.mean.to_bits());
        assert_eq!(serial.half_width.to_bits(), parallel.half_width.to_bits());
        assert_eq!(serial.n, parallel.n);
    }

    #[test]
    #[should_panic(expected = "no replications")]
    fn empty_input_rejected() {
        MeanCi::from_values(&[]);
    }
}
