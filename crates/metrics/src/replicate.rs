//! Multi-seed replication: means with confidence intervals.
//!
//! Single simulation runs are noisy; the paper itself reports one month of
//! one reality. For ablations (history-aware placement, eviction
//! strategies) we replicate across seeds and report a mean with a 95%
//! confidence half-width, so "A beats B" claims are statistically
//! defensible.

use condor_sim::stats::Running;

/// A replicated estimate: mean over independent runs plus a confidence
/// half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Mean over replications.
    pub mean: f64,
    /// 95% confidence half-width (normal approximation; replications are
    /// independent seeds).
    pub half_width: f64,
    /// Number of replications.
    pub n: u64,
}

impl MeanCi {
    /// Computes the estimate from per-replication values.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn from_values(values: &[f64]) -> MeanCi {
        assert!(!values.is_empty(), "no replications");
        let r: Running = values.iter().copied().collect();
        let n = r.count();
        let half_width = if n < 2 {
            f64::INFINITY
        } else {
            1.96 * (r.sample_variance() / n as f64).sqrt()
        };
        MeanCi {
            mean: r.mean(),
            half_width,
            n,
        }
    }

    /// Whether this estimate is significantly below `other` (intervals do
    /// not overlap).
    pub fn significantly_below(&self, other: &MeanCi) -> bool {
        self.mean + self.half_width < other.mean - other.half_width
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.half_width.is_finite() {
            write!(f, "{:.2} ± {:.2}", self.mean, self.half_width)
        } else {
            write!(f, "{:.2} (n=1)", self.mean)
        }
    }
}

/// Runs `f` once per seed and aggregates the returned metric.
pub fn replicate<F>(seeds: &[u64], mut f: F) -> MeanCi
where
    F: FnMut(u64) -> f64,
{
    let values: Vec<f64> = seeds.iter().map(|&s| f(s)).collect();
    MeanCi::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_half_width() {
        let ci = MeanCi::from_values(&[10.0, 12.0, 8.0, 10.0]);
        assert_eq!(ci.mean, 10.0);
        assert_eq!(ci.n, 4);
        // s² = (0+4+4+0)/3 = 8/3; hw = 1.96·sqrt(8/12) ≈ 1.6.
        assert!((ci.half_width - 1.96 * (8.0f64 / 12.0).sqrt()).abs() < 1e-9);
        assert_eq!(format!("{ci}"), format!("10.00 ± {:.2}", ci.half_width));
    }

    #[test]
    fn single_replication_has_infinite_width() {
        let ci = MeanCi::from_values(&[5.0]);
        assert_eq!(ci.mean, 5.0);
        assert!(ci.half_width.is_infinite());
        assert!(format!("{ci}").contains("n=1"));
    }

    #[test]
    fn significance_requires_separation() {
        let low = MeanCi { mean: 1.0, half_width: 0.5, n: 10 };
        let high = MeanCi { mean: 3.0, half_width: 0.5, n: 10 };
        assert!(low.significantly_below(&high));
        assert!(!high.significantly_below(&low));
        let wide = MeanCi { mean: 3.0, half_width: 3.0, n: 3 };
        assert!(!low.significantly_below(&wide), "overlapping intervals");
    }

    #[test]
    fn replicate_runs_per_seed() {
        let ci = replicate(&[1, 2, 3, 4], |s| s as f64);
        assert_eq!(ci.mean, 2.5);
        assert_eq!(ci.n, 4);
    }

    #[test]
    #[should_panic(expected = "no replications")]
    fn empty_input_rejected() {
        MeanCi::from_values(&[]);
    }
}
