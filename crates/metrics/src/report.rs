//! Terminal rendering of the [`Telemetry`] summary.
//!
//! One function, [`render_telemetry`], turns the O(1)-memory summary every
//! run produces into the tables the `condor report` subcommand prints:
//! per-kind event counts, histogram digests (count / mean / p50 / p99 /
//! max), and gauge-series digests.

use condor_core::telemetry::Telemetry;
use condor_sim::stats::LogHistogram;

use crate::table::{num, Align, Table};

fn histogram_row(name: &str, h: &LogHistogram, unit: &str) -> Vec<String> {
    if h.is_empty() {
        return vec![name.into(), "0".into(), "-".into(), "-".into(), "-".into(), "-".into()];
    }
    vec![
        name.into(),
        h.count().to_string(),
        format!("{} {unit}", num(h.mean(), 1)),
        format!("{} {unit}", h.quantile(0.5).expect("non-empty")),
        format!("{} {unit}", h.quantile(0.99).expect("non-empty")),
        format!("{} {unit}", h.max().expect("non-empty")),
    ]
}

/// Renders a [`Telemetry`] summary as monospace tables.
///
/// Histogram quantiles are log₂-bucket approximations (within a factor of
/// two); counts, means, and extrema are exact.
pub fn render_telemetry(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "telemetry: {} events over {}\n\n",
        t.events_total, t.finished_at
    ));

    let mut counts = Table::new(vec!["event", "count"], vec![Align::Left, Align::Right]);
    for (name, c) in t.nonzero_counts() {
        counts.row(vec![name.into(), c.to_string()]);
    }
    out.push_str(&counts.render());
    out.push('\n');

    let mut hist = Table::new(
        vec!["histogram", "count", "mean", "~p50", "~p99", "max"],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    hist.row(histogram_row("queue wait", &t.queue_wait_ms, "ms"));
    hist.row(histogram_row("remote burst", &t.remote_burst_ms, "ms"));
    hist.row(histogram_row("checkpoint size", &t.checkpoint_bytes, "B"));
    out.push_str(&hist.render());
    out.push('\n');

    let mut gauges = Table::new(
        vec!["gauge", "samples", "mean", "max", "points"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    gauges.row(vec![
        "bus backlog (ms)".into(),
        t.bus_backlog_ms.samples().to_string(),
        num(t.bus_backlog_ms.mean(), 1),
        num(t.bus_backlog_ms.max().unwrap_or(0.0), 1),
        t.bus_backlog_ms.len().to_string(),
    ]);
    gauges.row(vec![
        "up-down index".into(),
        t.updown_index.samples().to_string(),
        num(t.updown_index.mean(), 2),
        num(t.updown_index.max().unwrap_or(0.0), 2),
        t.updown_index.len().to_string(),
    ]);
    out.push_str(&gauges.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_core::cluster::run_cluster;
    use condor_core::config::ClusterConfig;
    use condor_sim::time::SimDuration;

    #[test]
    fn renders_a_live_run() {
        let out = run_cluster(
            ClusterConfig { stations: 6, record_trace: false, ..ClusterConfig::default() },
            Vec::new(),
            SimDuration::from_days(3),
        );
        let text = render_telemetry(&out.telemetry);
        assert!(text.contains("owner_active"), "{text}");
        assert!(text.contains("coordinator_polled"), "{text}");
        assert!(text.contains("bus backlog"), "{text}");
        assert!(text.contains("up-down index"), "{text}");
    }

    #[test]
    fn empty_telemetry_renders_dashes() {
        let text = render_telemetry(&Telemetry::default());
        assert!(text.contains("0 events"), "{text}");
        assert!(text.contains('-'), "{text}");
    }
}
