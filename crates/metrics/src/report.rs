//! Terminal rendering of the [`Telemetry`] summary and [`SpanLog`]
//! breakdowns.
//!
//! [`render_telemetry`] turns the O(1)-memory summary every run produces
//! into the tables the `condor report` subcommand prints: per-kind event
//! counts, histogram digests (count / mean / p50 / p99 / max), and
//! gauge-series digests. [`render_spans`] turns a folded [`SpanLog`] into
//! the where-time-went tables behind `condor spans`.

use condor_core::spans::{SpanLog, SpanPhase};
use condor_core::telemetry::Telemetry;
use condor_sim::stats::LogHistogram;
use condor_sim::time::SimDuration;

use crate::table::{num, Align, Table};

fn histogram_row(name: &str, h: &LogHistogram, unit: &str) -> Vec<String> {
    if h.is_empty() {
        return vec![name.into(), "0".into(), "-".into(), "-".into(), "-".into(), "-".into()];
    }
    vec![
        name.into(),
        h.count().to_string(),
        format!("{} {unit}", num(h.mean(), 1)),
        format!("{} {unit}", h.quantile(0.5).expect("non-empty")),
        format!("{} {unit}", h.quantile(0.99).expect("non-empty")),
        format!("{} {unit}", h.max().expect("non-empty")),
    ]
}

/// Renders a [`Telemetry`] summary as monospace tables.
///
/// Histogram quantiles are log₂-bucket approximations (within a factor of
/// two); counts, means, and extrema are exact.
pub fn render_telemetry(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "telemetry: {} events over {}\n\n",
        t.events_total, t.finished_at
    ));

    let mut counts = Table::new(vec!["event", "count"], vec![Align::Left, Align::Right]);
    for (name, c) in t.nonzero_counts() {
        counts.row(vec![name.into(), c.to_string()]);
    }
    out.push_str(&counts.render());
    out.push('\n');

    let mut hist = Table::new(
        vec!["histogram", "count", "mean", "~p50", "~p99", "max"],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    hist.row(histogram_row("queue wait", &t.queue_wait_ms, "ms"));
    hist.row(histogram_row("remote burst", &t.remote_burst_ms, "ms"));
    hist.row(histogram_row("checkpoint size", &t.checkpoint_bytes, "B"));
    out.push_str(&hist.render());
    out.push('\n');

    let mut gauges = Table::new(
        vec!["gauge", "samples", "mean", "max", "points"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    gauges.row(vec![
        "bus backlog (ms)".into(),
        t.bus_backlog_ms.samples().to_string(),
        num(t.bus_backlog_ms.mean(), 1),
        num(t.bus_backlog_ms.max().unwrap_or(0.0), 1),
        t.bus_backlog_ms.len().to_string(),
    ]);
    gauges.row(vec![
        "up-down index".into(),
        t.updown_index.samples().to_string(),
        num(t.updown_index.mean(), 2),
        num(t.updown_index.max().unwrap_or(0.0), 2),
        t.updown_index.len().to_string(),
    ]);
    out.push_str(&gauges.render());
    out
}

/// Renders the where-time-went breakdown of a [`SpanLog`]: the aggregate
/// per-phase split, the critical-path job's own split, and the `limit`
/// jobs with the largest wall clocks.
///
/// Because spans are gapless, every row's phase columns sum exactly to its
/// wall-clock column.
pub fn render_spans(log: &SpanLog, limit: usize) -> String {
    let b = log.breakdown();
    let mut out = String::new();
    out.push_str(&format!(
        "spans: {} jobs, {} stations hosted work, horizon {}\n",
        b.per_job.len(),
        log.stations.len(),
        log.finished_at
    ));
    out.push_str(&format!("makespan {} (first arrival to last completion)\n\n", b.makespan));

    let share = |d: SimDuration, total: SimDuration| -> String {
        if total.is_zero() {
            "-".into()
        } else {
            format!("{}%", num(100.0 * d.as_millis() as f64 / total.as_millis() as f64, 1))
        }
    };

    let mut agg = Table::new(
        vec!["phase", "total", "share"],
        vec![Align::Left, Align::Right, Align::Right],
    );
    for phase in SpanPhase::ALL {
        let d = b.aggregate[phase.index()];
        agg.row(vec![phase.name().into(), d.to_string(), share(d, b.total_wall)]);
    }
    agg.row(vec!["all phases".into(), b.total_wall.to_string(), share(b.total_wall, b.total_wall)]);
    out.push_str(&agg.render());
    out.push('\n');

    if let Some(c) = &b.critical {
        out.push_str(&format!(
            "critical path: job {} ({}) — wall {}\n",
            c.job.0,
            if c.completed { "closes the makespan" } else { "still unfinished at the horizon" },
            c.wall
        ));
        let parts: Vec<String> = SpanPhase::ALL
            .iter()
            .filter(|p| !c.by_phase[p.index()].is_zero())
            .map(|p| format!("{} {}", p.name(), c.by_phase[p.index()]))
            .collect();
        out.push_str(&format!("  {}\n\n", parts.join(", ")));
    }

    let mut rows: Vec<_> = b.per_job.iter().collect();
    rows.sort_by(|a, b| b.wall.cmp(&a.wall).then(a.job.cmp(&b.job)));
    let shown = rows.len().min(limit);
    out.push_str(&format!("top {shown} of {} jobs by wall clock:\n", rows.len()));
    let mut table = Table::new(
        vec!["job", "wall", "queued", "transfer", "running", "suspended", "checkpointing", "done"],
        vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ],
    );
    for jb in rows.into_iter().take(limit) {
        let mut row = vec![jb.job.0.to_string(), jb.wall.to_string()];
        for phase in SpanPhase::ALL {
            row.push(jb.by_phase[phase.index()].to_string());
        }
        row.push(if jb.completed { "yes".into() } else { "no".into() });
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use condor_core::cluster::run_cluster;
    use condor_core::config::ClusterConfig;
    use condor_sim::time::SimDuration;

    #[test]
    fn renders_a_live_run() {
        let out = run_cluster(
            ClusterConfig { stations: 6, record_trace: false, ..ClusterConfig::default() },
            Vec::new(),
            SimDuration::from_days(3),
        );
        let text = render_telemetry(&out.telemetry);
        assert!(text.contains("owner_active"), "{text}");
        assert!(text.contains("coordinator_polled"), "{text}");
        assert!(text.contains("bus backlog"), "{text}");
        assert!(text.contains("up-down index"), "{text}");
    }

    #[test]
    fn empty_telemetry_renders_dashes() {
        let text = render_telemetry(&Telemetry::default());
        assert!(text.contains("0 events"), "{text}");
        assert!(text.contains('-'), "{text}");
    }

    #[test]
    fn renders_spans_of_a_live_run() {
        use condor_core::cluster::run_cluster_with_sinks;
        use condor_core::job::{JobId, JobSpec, UserId};
        use condor_core::spans::SpanSink;
        use condor_core::telemetry::SharedSink;
        use condor_net::NodeId;
        use condor_sim::time::SimTime;

        let jobs: Vec<JobSpec> = (0..5)
            .map(|i| JobSpec {
                id: JobId(i),
                user: UserId(0),
                home: NodeId::new((i % 3) as u32),
                arrival: SimTime::from_hours(i),
                demand: SimDuration::from_hours(3),
                image_bytes: 250_000,
                syscalls_per_cpu_sec: 0.1,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: Default::default(),
                speedup: Default::default(),
            })
            .collect();
        let spans = SharedSink::new(SpanSink::new());
        let _ = run_cluster_with_sinks(
            ClusterConfig { stations: 3, seed: 5, ..ClusterConfig::default() },
            jobs,
            SimDuration::from_days(2),
            vec![Box::new(spans.clone())],
        );
        let log = spans.with(|s| s.log().clone());
        let text = render_spans(&log, 10);
        assert!(text.contains("spans: 5 jobs"), "{text}");
        assert!(text.contains("running"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("all phases"), "{text}");
    }

    #[test]
    fn renders_empty_span_log() {
        let text = render_spans(&SpanLog::default(), 10);
        assert!(text.contains("spans: 0 jobs"), "{text}");
    }
}
