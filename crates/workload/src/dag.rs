//! Dependency-graph workloads (paper §5(2)).
//!
//! The paper's second future-work item asks for `fork`/`exec`/`pipe`
//! support so process pipelines can run under Condor. In batch terms a
//! pipeline is a dependency chain — the construct that later grew into
//! HTCondor's DAGMan. These builders assemble common DAG shapes over
//! `JobSpec`s; the cluster holds each job until its dependencies complete.

use condor_core::job::{JobId, JobSpec, UserId};
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

/// Builds job DAGs with dense ids and consistent metadata.
///
/// # Examples
///
/// ```
/// use condor_workload::dag::DagBuilder;
/// use condor_sim::time::SimDuration;
///
/// let mut dag = DagBuilder::new(0, 0);
/// let prep = dag.job(SimDuration::from_hours(1), &[]);
/// let sims: Vec<_> = (0..4).map(|_| dag.job(SimDuration::from_hours(3), &[prep])).collect();
/// let _report = dag.job(SimDuration::from_hours(1), &sims);
/// let jobs = dag.build();
/// assert_eq!(jobs.len(), 6);
/// assert_eq!(jobs[5].depends_on.len(), 4);
/// ```
#[derive(Debug)]
pub struct DagBuilder {
    user: UserId,
    home: NodeId,
    arrival: SimTime,
    image_bytes: u64,
    syscalls_per_cpu_sec: f64,
    first_id: u64,
    jobs: Vec<JobSpec>,
}

impl DagBuilder {
    /// Starts a DAG for `user` submitting from station `home`, with jobs
    /// numbered from 0 and arriving at time zero.
    pub fn new(user: u32, home: u32) -> DagBuilder {
        DagBuilder {
            user: UserId(user),
            home: NodeId::new(home),
            arrival: SimTime::ZERO,
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            first_id: 0,
            jobs: Vec::new(),
        }
    }

    /// Sets the submission instant for subsequently added jobs.
    pub fn arriving_at(&mut self, at: SimTime) -> &mut DagBuilder {
        self.arrival = at;
        self
    }

    /// Sets the first job id (for merging multiple DAGs).
    pub fn first_id(&mut self, id: u64) -> &mut DagBuilder {
        assert!(self.jobs.is_empty(), "set first_id before adding jobs");
        self.first_id = id;
        self
    }

    /// Adds a width-k gang job (paper §5(2) parallel program) with the
    /// given per-member demand and dependencies; returns its id.
    pub fn gang(&mut self, width: u32, demand: SimDuration, deps: &[JobId]) -> JobId {
        assert!(width >= 1, "zero-width gang");
        let id = self.job(demand, deps);
        self.jobs.last_mut().expect("just pushed").width = width;
        id
    }

    /// Adds one job with the given demand and dependencies; returns its id.
    pub fn job(&mut self, demand: SimDuration, deps: &[JobId]) -> JobId {
        let id = JobId(self.first_id + self.jobs.len() as u64);
        for d in deps {
            assert!(d.0 < id.0, "dependency {d} does not precede {id}");
        }
        self.jobs.push(JobSpec {
            id,
            user: self.user,
            home: self.home,
            arrival: self.arrival,
            demand,
            image_bytes: self.image_bytes,
            syscalls_per_cpu_sec: self.syscalls_per_cpu_sec,
            binaries: Default::default(),
            depends_on: deps.to_vec(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
        id
    }

    /// Adds a linear pipeline of `stages` jobs, each depending on the
    /// previous; returns the stage ids.
    pub fn pipeline(&mut self, stages: usize, demand_each: SimDuration) -> Vec<JobId> {
        assert!(stages > 0, "empty pipeline");
        let mut ids = Vec::with_capacity(stages);
        let mut prev: Option<JobId> = None;
        for _ in 0..stages {
            let deps: Vec<JobId> = prev.into_iter().collect();
            let id = self.job(demand_each, &deps);
            prev = Some(id);
            ids.push(id);
        }
        ids
    }

    /// Adds a fork-join: one setup job, `width` parallel branches, one
    /// join. Returns `(setup, branches, join)`.
    pub fn fork_join(
        &mut self,
        width: usize,
        setup: SimDuration,
        branch: SimDuration,
        join: SimDuration,
    ) -> (JobId, Vec<JobId>, JobId) {
        assert!(width > 0, "zero-width fork");
        let s = self.job(setup, &[]);
        let branches: Vec<JobId> = (0..width).map(|_| self.job(branch, &[s])).collect();
        let j = self.job(join, &branches);
        (s, branches, j)
    }

    /// Finishes the DAG, returning the job list.
    pub fn build(self) -> Vec<JobSpec> {
        self.jobs
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_chains_dependencies() {
        let mut dag = DagBuilder::new(0, 0);
        let ids = dag.pipeline(4, SimDuration::HOUR);
        let jobs = dag.build();
        assert_eq!(ids.len(), 4);
        assert!(jobs[0].depends_on.is_empty());
        for (i, job) in jobs.iter().enumerate().skip(1) {
            assert_eq!(job.depends_on, vec![JobId(i as u64 - 1)]);
        }
    }

    #[test]
    fn fork_join_shape() {
        let mut dag = DagBuilder::new(1, 2);
        let (setup, branches, join) = dag.fork_join(
            3,
            SimDuration::HOUR,
            SimDuration::from_hours(2),
            SimDuration::HOUR,
        );
        let jobs = dag.build();
        assert_eq!(jobs.len(), 5);
        for b in &branches {
            assert_eq!(jobs[b.0 as usize].depends_on, vec![setup]);
        }
        assert_eq!(jobs[join.0 as usize].depends_on, branches);
        assert!(jobs.iter().all(|j| j.user == UserId(1)));
    }

    #[test]
    fn first_id_offsets_everything() {
        let mut dag = DagBuilder::new(0, 0);
        dag.first_id(100);
        let a = dag.job(SimDuration::HOUR, &[]);
        let b = dag.job(SimDuration::HOUR, &[a]);
        assert_eq!(a, JobId(100));
        assert_eq!(b, JobId(101));
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_reference_rejected() {
        let mut dag = DagBuilder::new(0, 0);
        dag.job(SimDuration::HOUR, &[JobId(5)]);
    }

    #[test]
    fn gang_jobs_carry_width() {
        let mut dag = DagBuilder::new(0, 0);
        let prep = dag.job(SimDuration::HOUR, &[]);
        let sim = dag.gang(4, SimDuration::from_hours(6), &[prep]);
        let jobs = dag.build();
        assert_eq!(jobs[sim.0 as usize].width, 4);
        assert_eq!(jobs[prep.0 as usize].width, 1);
        assert_eq!(jobs[sim.0 as usize].depends_on, vec![prep]);
    }

    #[test]
    fn end_to_end_fork_join_completes_in_order() {
        use condor_core::cluster::run_cluster;
        use condor_core::config::ClusterConfig;
        use condor_core::job::JobState;
        use condor_model::diurnal::DiurnalProfile;
        use condor_model::owner::OwnerConfig;

        let mut dag = DagBuilder::new(0, 0);
        let (setup, branches, join) = dag.fork_join(
            4,
            SimDuration::HOUR,
            SimDuration::from_hours(2),
            SimDuration::HOUR,
        );
        let jobs = dag.build();
        let config = ClusterConfig {
            stations: 6,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let out = run_cluster(config, jobs, SimDuration::from_days(2));
        assert!(out.jobs.iter().all(|j| j.state == JobState::Completed));
        let t = |id: JobId| out.jobs[id.0 as usize].completed_at.unwrap();
        for b in &branches {
            assert!(t(setup) <= t(*b));
            assert!(t(*b) <= t(join));
        }
    }
}
