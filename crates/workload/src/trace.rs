//! Job traces: merging, summarising (Table 1), and CSV round-tripping.

use std::collections::BTreeMap;

use condor_core::job::{JobId, JobSpec, UserId};
use condor_model::station::ArchSet;
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

/// Merges per-user job lists into one global trace ordered by arrival,
/// reassigning dense ids in arrival order (the form
/// [`run_cluster`](condor_core::cluster::run_cluster) requires).
pub fn merge_users(per_user: Vec<Vec<JobSpec>>) -> Vec<JobSpec> {
    let mut all: Vec<JobSpec> = per_user.into_iter().flatten().collect();
    all.sort_by_key(|j| (j.arrival, j.user, j.id));
    for (i, j) in all.iter_mut().enumerate() {
        j.id = JobId(i as u64);
    }
    all
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct UserRow {
    /// The user.
    pub user: UserId,
    /// Jobs submitted.
    pub jobs: usize,
    /// Share of all jobs, percent.
    pub pct_jobs: f64,
    /// Mean demand per job, hours.
    pub mean_demand_hours: f64,
    /// Total demand, hours.
    pub total_demand_hours: f64,
    /// Share of all demand, percent.
    pub pct_demand: f64,
}

/// Summarises a trace into Table 1 rows (plus a synthetic "Total" row is
/// left to the renderer; this returns per-user rows sorted by user id).
pub fn table1_rows(jobs: &[JobSpec]) -> Vec<UserRow> {
    let mut per_user: BTreeMap<UserId, (usize, f64)> = BTreeMap::new();
    for j in jobs {
        let e = per_user.entry(j.user).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += j.demand.as_hours_f64();
    }
    let total_jobs: usize = jobs.len();
    let total_demand: f64 = per_user.values().map(|v| v.1).sum();
    per_user
        .into_iter()
        .map(|(user, (n, demand))| UserRow {
            user,
            jobs: n,
            pct_jobs: 100.0 * n as f64 / total_jobs.max(1) as f64,
            mean_demand_hours: demand / n.max(1) as f64,
            total_demand_hours: demand,
            pct_demand: if total_demand > 0.0 {
                100.0 * demand / total_demand
            } else {
                0.0
            },
        })
        .collect()
}

/// Serialises a trace to CSV (header + one row per job).
pub fn to_csv(jobs: &[JobSpec]) -> String {
    let mut out =
        String::from("id,user,home,arrival_ms,demand_ms,image_bytes,syscalls_per_cpu_sec,binaries\n");
    for j in jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            j.id.0,
            j.user.0,
            j.home.index(),
            j.arrival.as_millis(),
            j.demand.as_millis(),
            j.image_bytes,
            j.syscalls_per_cpu_sec,
            j.binaries,
        ));
    }
    out
}

/// Errors from [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header line was missing or wrong.
    BadHeader,
    /// A row had the wrong number of fields or an unparsable field.
    BadRow {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "missing or malformed CSV header"),
            CsvError::BadRow { line } => write!(f, "malformed CSV row at line {line}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a trace written by [`to_csv`].
///
/// # Errors
///
/// [`CsvError`] on malformed input.
pub fn from_csv(csv: &str) -> Result<Vec<JobSpec>, CsvError> {
    let mut lines = csv.lines();
    let header = lines.next().ok_or(CsvError::BadHeader)?;
    // The binaries column was added later; legacy 7-column traces parse as
    // all-VAX.
    let legacy = header.trim() == "id,user,home,arrival_ms,demand_ms,image_bytes,syscalls_per_cpu_sec";
    if !legacy
        && header.trim()
            != "id,user,home,arrival_ms,demand_ms,image_bytes,syscalls_per_cpu_sec,binaries"
    {
        return Err(CsvError::BadHeader);
    }
    let want_fields = if legacy { 7 } else { 8 };
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != want_fields {
            return Err(CsvError::BadRow { line: line_no });
        }
        let parse_u64 =
            |s: &str| s.trim().parse::<u64>().map_err(|_| CsvError::BadRow { line: line_no });
        let parse_f64 =
            |s: &str| s.trim().parse::<f64>().map_err(|_| CsvError::BadRow { line: line_no });
        out.push(JobSpec {
            id: JobId(parse_u64(fields[0])?),
            user: UserId(parse_u64(fields[1])? as u32),
            home: NodeId::new(parse_u64(fields[2])? as u32),
            arrival: SimTime::from_millis(parse_u64(fields[3])?),
            demand: SimDuration::from_millis(parse_u64(fields[4])?),
            image_bytes: parse_u64(fields[5])?,
            syscalls_per_cpu_sec: parse_f64(fields[6])?,
            binaries: if legacy {
                ArchSet::vax_only()
            } else {
                match fields[7].trim() {
                    "vax" => ArchSet::vax_only(),
                    "sun" => ArchSet::sun_only(),
                    "vax+sun" => ArchSet::both(),
                    _ => return Err(CsvError::BadRow { line: line_no }),
                }
            },
            // Dependency DAGs are an in-memory construct; CSV traces carry
            // independent jobs.
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, user: u32, arrival_ms: u64, demand_h: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(user),
            home: NodeId::new(user),
            arrival: SimTime::from_millis(arrival_ms),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    #[test]
    fn merge_orders_and_reindexes() {
        let a = vec![spec(0, 0, 5_000, 1), spec(1, 0, 1_000, 1)];
        let b = vec![spec(0, 1, 2_000, 1)];
        let merged = merge_users(vec![a, b]);
        assert_eq!(merged.len(), 3);
        let ids: Vec<u64> = merged.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let arrivals: Vec<u64> = merged.iter().map(|j| j.arrival.as_millis()).collect();
        assert_eq!(arrivals, vec![1_000, 2_000, 5_000]);
    }

    #[test]
    fn table1_percentages_sum_to_100() {
        let jobs = vec![
            spec(0, 0, 0, 6),
            spec(1, 0, 0, 6),
            spec(2, 1, 0, 2),
            spec(3, 2, 0, 1),
        ];
        let rows = table1_rows(&jobs);
        assert_eq!(rows.len(), 3);
        let pj: f64 = rows.iter().map(|r| r.pct_jobs).sum();
        let pd: f64 = rows.iter().map(|r| r.pct_demand).sum();
        assert!((pj - 100.0).abs() < 1e-9);
        assert!((pd - 100.0).abs() < 1e-9);
        assert_eq!(rows[0].jobs, 2);
        assert_eq!(rows[0].mean_demand_hours, 6.0);
        assert_eq!(rows[0].total_demand_hours, 12.0);
    }

    #[test]
    fn csv_roundtrip() {
        let jobs = vec![spec(0, 0, 1_000, 2), spec(1, 4, 2_000, 7)];
        let csv = to_csv(&jobs);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, jobs);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert_eq!(from_csv(""), Err(CsvError::BadHeader));
        assert_eq!(from_csv("wrong,header\n"), Err(CsvError::BadHeader));
        let good_header =
            "id,user,home,arrival_ms,demand_ms,image_bytes,syscalls_per_cpu_sec,binaries";
        assert_eq!(
            from_csv(&format!("{good_header}\n1,2,3\n")),
            Err(CsvError::BadRow { line: 2 })
        );
        assert_eq!(
            from_csv(&format!("{good_header}\n1,2,3,x,5,6,7,vax\n")),
            Err(CsvError::BadRow { line: 2 })
        );
        assert_eq!(
            from_csv(&format!("{good_header}\n1,2,3,4,5,6,7,m68k\n")),
            Err(CsvError::BadRow { line: 2 })
        );
        // Blank lines are tolerated.
        let ok = from_csv(&format!("{good_header}\n\n")).unwrap();
        assert!(ok.is_empty());
    }

    #[test]
    fn legacy_seven_column_csv_parses_as_vax_only() {
        let legacy = "id,user,home,arrival_ms,demand_ms,image_bytes,syscalls_per_cpu_sec\n\
                      0,1,2,1000,2000,500000,0.5\n";
        let jobs = from_csv(legacy).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].binaries, ArchSet::vax_only());
    }

    #[test]
    fn csv_roundtrips_binaries() {
        let mut jobs = vec![spec(0, 0, 1_000, 2), spec(1, 1, 2_000, 3)];
        jobs[0].binaries = ArchSet::both();
        jobs[1].binaries = ArchSet::sun_only();
        let back = from_csv(&to_csv(&jobs)).unwrap();
        assert_eq!(back, jobs);
    }
}
