//! # condor-workload — the users of the system
//!
//! Workload generation calibrated to the paper's one-month observation:
//!
//! * [`user`] — statistical user profiles (heavy user A with standing
//!   30-job queues; light users B–E with occasional ≈ 5-job batches),
//!   right-skewed service demands, half-megabyte images, and the
//!   constant-total-I/O property behind the leverage figure;
//! * [`trace`] — merging per-user submissions into one dense trace,
//!   Table 1 summarisation, and CSV round-tripping;
//! * [`scenarios`] — the ready-made experiment inputs: the Table 1 month,
//!   the Figures 6–7 week, a controlled heavy-vs-light fairness duel, and
//!   the §5(4) mixed-architecture month;
//! * [`dag`] — dependency-graph builders (pipelines, fork-join) for the
//!   §5(2) process-pipeline workloads.
//!
//! ## Example
//!
//! ```
//! use condor_workload::scenarios::paper_month;
//! use condor_workload::trace::table1_rows;
//!
//! let scenario = paper_month(1988);
//! assert_eq!(scenario.jobs.len(), 918); // the paper's job count
//! let rows = table1_rows(&scenario.jobs);
//! assert_eq!(rows[0].jobs, 690); // user A
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dag;
pub mod scenarios;
pub mod trace;
pub mod user;

pub use dag::DagBuilder;
pub use scenarios::{
    assign_speedup_mix, fairness_duel, mixed_arch_month, one_week, paper_month, Scenario,
    PAPER_USERS,
};
pub use trace::{from_csv, merge_users, table1_rows, to_csv, CsvError, UserRow};
pub use user::UserProfile;
