//! User behaviour models.
//!
//! Table 1 of the paper profiles five users: one *heavy* user (A) who "often
//! tried to execute as many remote jobs as there were workstations" and kept
//! more than 30 jobs in the system, and four *light* users (B–E) who
//! submitted occasional batches of ≈ 5 jobs. A [`UserProfile`] captures the
//! statistical signature of one such user; [`UserProfile::generate`] expands
//! it into concrete job specifications.

use condor_core::job::{JobId, JobSpec, UserId};
use condor_model::station::ArchSet;
use condor_net::NodeId;
use condor_sim::dist::{Hyperexponential, LogNormal, Sample};
use condor_sim::rng::SimRng;
use condor_sim::time::{SimDuration, SimTime};

/// Statistical description of one submitting user.
#[derive(Debug)]
pub struct UserProfile {
    /// Identity (paper letters A–E map to 0–4).
    pub user: UserId,
    /// The workstation this user submits from.
    pub home: NodeId,
    /// Total jobs submitted over the observation window.
    pub job_count: usize,
    /// Mean of the batch-size distribution (jobs arrive in batches —
    /// paper Fig. 3's sharp queue-length rises).
    pub mean_batch_size: f64,
    /// Service-demand distribution (hours of reference CPU).
    pub demand_hours: Hyperexponential,
    /// Checkpoint-image size distribution (bytes); the paper's observed
    /// mean was ½ MB.
    pub image_bytes: LogNormal,
    /// Distribution of *total* system calls per job. The paper notes short
    /// jobs do about the same total I/O as long ones, which is exactly what
    /// makes their leverage lower (Fig. 9); so the total, not the rate, is
    /// the stable per-job quantity.
    pub total_syscalls: LogNormal,
    /// Architectures the user compiles for (paper §5(4); the 1988 default
    /// is VAX-only).
    pub binaries: ArchSet,
}

impl UserProfile {
    /// A profile with the paper's cross-user defaults: batches of ~5,
    /// half-megabyte images, and a demand mixture with the requested mean.
    ///
    /// The demand distribution is a two-branch hyperexponential: 70% of
    /// jobs are "short" (a third of the mean), 30% "long", preserving the
    /// requested mean while keeping the median well below it — the shape of
    /// the paper's Fig. 2.
    pub fn with_mean_demand(user: UserId, home: NodeId, job_count: usize, mean_hours: f64) -> Self {
        assert!(mean_hours > 0.0, "demand mean must be positive");
        // p·(m/3) + (1−p)·L = m with p = 0.7 → L = (m − 0.7·m/3)/0.3.
        let short = mean_hours / 3.0;
        let long = (mean_hours - 0.7 * short) / 0.3;
        UserProfile {
            user,
            home,
            job_count,
            mean_batch_size: 5.0,
            demand_hours: Hyperexponential::new(vec![(0.7, short), (0.3, long)]),
            image_bytes: LogNormal::with_mean(500_000.0, 0.5),
            total_syscalls: LogNormal::with_mean(400.0, 1.0),
            binaries: ArchSet::vax_only(),
        }
    }

    /// Generates this user's submissions across `[0, window)`.
    ///
    /// Jobs arrive in batches: batch epochs are uniform over the window,
    /// batch sizes are geometric-ish draws around `mean_batch_size`, and
    /// every job in a batch shares the same arrival instant (the user typed
    /// one `submit` loop). Ids are provisional (dense from `first_id`);
    /// [`merge_users`](crate::trace::merge_users) reassigns them by global
    /// arrival order.
    pub fn generate(&self, window: SimDuration, rng: &mut SimRng, first_id: u64) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.job_count);
        let mut next_id = first_id;
        while jobs.len() < self.job_count {
            let batch_at = SimTime::from_millis(rng.uniform_range_u64(0, window.as_millis()));
            // Geometric batch size with the configured mean, at least 1.
            let mut size = 1usize;
            let p_continue = 1.0 - 1.0 / self.mean_batch_size.max(1.0);
            while rng.chance(p_continue) && size < 64 {
                size += 1;
            }
            for _ in 0..size {
                if jobs.len() >= self.job_count {
                    break;
                }
                let demand_h = self.demand_hours.sample(rng).max(0.05);
                let demand = SimDuration::from_hours_f64(demand_h);
                let image = (self.image_bytes.sample(rng).max(50_000.0)) as u64;
                let calls = self.total_syscalls.sample(rng).max(1.0);
                let rate = calls / demand.as_secs_f64();
                jobs.push(JobSpec {
                    id: JobId(next_id),
                    user: self.user,
                    home: self.home,
                    arrival: batch_at,
                    demand,
                    image_bytes: image,
                    syscalls_per_cpu_sec: rate,
                    binaries: self.binaries,
                    depends_on: Vec::new(),
                    width: 1,
                    resources: Default::default(),
                    speedup: Default::default(),
                });
                next_id += 1;
            }
        }
        jobs.sort_by_key(|j| (j.arrival, j.id));
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(n: usize, mean_h: f64) -> UserProfile {
        UserProfile::with_mean_demand(UserId(0), NodeId::new(0), n, mean_h)
    }

    #[test]
    fn demand_mixture_preserves_mean() {
        for mean in [0.7, 2.5, 6.2] {
            let p = profile(10, mean);
            assert!(
                (p.demand_hours.mean() - mean).abs() < 1e-9,
                "mixture mean for {mean}"
            );
        }
    }

    #[test]
    fn generates_requested_count_within_window() {
        let p = profile(200, 3.0);
        let mut rng = SimRng::seed_from(1);
        let window = SimDuration::from_days(30);
        let jobs = p.generate(window, &mut rng, 0);
        assert_eq!(jobs.len(), 200);
        for j in &jobs {
            assert!(j.arrival < SimTime::ZERO + window);
            assert!(j.demand >= SimDuration::from_minutes(3));
            assert!(j.image_bytes >= 50_000);
            assert!(j.syscalls_per_cpu_sec > 0.0);
            assert_eq!(j.user, UserId(0));
            assert_eq!(j.home, NodeId::new(0));
        }
        // Sorted by arrival.
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn empirical_demand_mean_tracks_target() {
        let p = profile(5_000, 6.2);
        let mut rng = SimRng::seed_from(2);
        let jobs = p.generate(SimDuration::from_days(30), &mut rng, 0);
        let mean_h: f64 =
            jobs.iter().map(|j| j.demand.as_hours_f64()).sum::<f64>() / jobs.len() as f64;
        assert!((mean_h - 6.2).abs() / 6.2 < 0.1, "empirical mean {mean_h}");
        // Median below mean: right skew, the Fig. 2 shape.
        let mut hours: Vec<f64> = jobs.iter().map(|j| j.demand.as_hours_f64()).collect();
        hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = hours[hours.len() / 2];
        assert!(median < mean_h * 0.75, "median {median} vs mean {mean_h}");
    }

    #[test]
    fn jobs_arrive_in_batches() {
        let p = profile(100, 2.0);
        let mut rng = SimRng::seed_from(3);
        let jobs = p.generate(SimDuration::from_days(30), &mut rng, 0);
        // Batches share arrival instants: distinct arrivals well below
        // the job count.
        let distinct: std::collections::HashSet<u64> =
            jobs.iter().map(|j| j.arrival.as_millis()).collect();
        assert!(
            distinct.len() * 2 < jobs.len(),
            "{} distinct arrivals for {} jobs — not batchy",
            distinct.len(),
            jobs.len()
        );
    }

    #[test]
    fn image_sizes_center_on_half_megabyte() {
        let p = profile(2_000, 2.0);
        let mut rng = SimRng::seed_from(4);
        let jobs = p.generate(SimDuration::from_days(30), &mut rng, 0);
        let mean_img: f64 =
            jobs.iter().map(|j| j.image_bytes as f64).sum::<f64>() / jobs.len() as f64;
        assert!(
            (mean_img - 500_000.0).abs() / 500_000.0 < 0.15,
            "mean image {mean_img}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile(50, 2.0);
        let a = p.generate(SimDuration::from_days(10), &mut SimRng::seed_from(9), 0);
        let b = p.generate(SimDuration::from_days(10), &mut SimRng::seed_from(9), 0);
        assert_eq!(a, b);
    }
}
