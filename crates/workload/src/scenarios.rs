//! Ready-made experiment scenarios.
//!
//! Each scenario bundles a cluster configuration, a job trace, and a run
//! horizon — everything [`condor_core::cluster::run_cluster`] needs. The
//! flagship is [`paper_month`], calibrated to Table 1 of the paper: five
//! users (heavy A, light B–E), 918 jobs, ≈ 4771 CPU-hours of demand over a
//! 30-day month on 23 workstations.

use condor_core::config::{ClusterConfig, PoolTopology};
use condor_core::job::{JobSpec, SpeedupCurve, UserId};
use condor_model::station::{Arch, ArchSet};
use condor_net::NodeId;
use condor_sim::rng::SimRng;
use condor_sim::time::SimDuration;

use crate::trace::merge_users;
use crate::user::UserProfile;

/// A fully specified experiment input.
#[derive(Debug)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// Cluster configuration.
    pub config: ClusterConfig,
    /// The complete job trace.
    pub jobs: Vec<JobSpec>,
    /// Observation window.
    pub horizon: SimDuration,
}

/// The paper's Table 1 user mix: `(letter index, jobs, mean demand hours)`.
pub const PAPER_USERS: [(u32, usize, f64); 5] = [
    (0, 690, 6.2), // A — the heavy user
    (1, 138, 2.5), // B
    (2, 39, 2.6),  // C
    (3, 40, 0.7),  // D
    (4, 11, 1.7),  // E
];

/// The paper's one-month observation: 23 VAXstation-class machines, five
/// users with Table 1's job counts and demands, batch arrivals, diurnal
/// owner activity.
///
/// The heavy user's jobs are spread through the month in large batches so a
/// standing queue of ≈ 30 jobs forms (paper Fig. 3); light users submit a
/// handful of ≈ 5-job batches.
pub fn paper_month(seed: u64) -> Scenario {
    let horizon = SimDuration::from_days(30);
    let config = ClusterConfig {
        stations: 23,
        seed,
        ..ClusterConfig::default()
    };
    let root = SimRng::seed_from(seed);
    let mut per_user = Vec::new();
    let mut first_id = 0u64;
    for (u, jobs, mean_h) in PAPER_USERS {
        let mut profile = UserProfile::with_mean_demand(
            UserId(u),
            NodeId::new(u), // each user submits from their own workstation
            jobs,
            mean_h,
        );
        if u == 0 {
            // The heavy user scripts large submission loops.
            profile.mean_batch_size = 12.0;
        }
        let mut rng = root.substream(seed, &format!("user-{u}"));
        let generated = profile.generate(horizon, &mut rng, first_id);
        first_id += generated.len() as u64;
        per_user.push(generated);
    }
    Scenario {
        name: "paper-month",
        config,
        jobs: merge_users(per_user),
        horizon,
    }
}

/// One working week (Monday–Sunday) with the same user mix scaled down
/// proportionally — the close-up of Figures 6 and 7.
pub fn one_week(seed: u64) -> Scenario {
    let horizon = SimDuration::from_days(7);
    let config = ClusterConfig {
        stations: 23,
        seed,
        ..ClusterConfig::default()
    };
    let root = SimRng::seed_from(seed);
    let mut per_user = Vec::new();
    let mut first_id = 0u64;
    for (u, jobs, mean_h) in PAPER_USERS {
        let scaled = ((jobs as f64) * 7.0 / 30.0).round().max(1.0) as usize;
        let mut profile =
            UserProfile::with_mean_demand(UserId(u), NodeId::new(u), scaled, mean_h);
        if u == 0 {
            profile.mean_batch_size = 12.0;
        }
        let mut rng = root.substream(seed, &format!("week-user-{u}"));
        let generated = profile.generate(horizon, &mut rng, first_id);
        first_id += generated.len() as u64;
        per_user.push(generated);
    }
    Scenario {
        name: "one-week",
        config,
        jobs: merge_users(per_user),
        horizon,
    }
}

/// A controlled fairness duel: one heavy user flooding the system from
/// station 0, one light user submitting a small batch every day from
/// station 1. Used by the policy-comparison experiment to reproduce the
/// paper's claim that Up-Down protects light users.
pub fn fairness_duel(seed: u64, stations: usize, days: u64) -> Scenario {
    let horizon = SimDuration::from_days(days);
    let config = ClusterConfig {
        stations,
        seed,
        ..ClusterConfig::default()
    };
    let root = SimRng::seed_from(seed);
    // Heavy user: enough 8-hour jobs to keep every machine busy all window.
    let heavy_jobs = (stations as f64 * days as f64 * 24.0 / 8.0 * 1.5) as usize;
    let mut heavy =
        UserProfile::with_mean_demand(UserId(0), NodeId::new(0), heavy_jobs, 8.0);
    heavy.mean_batch_size = 16.0;
    let mut rng_h = root.substream(seed, "duel-heavy");
    let heavy_list = heavy.generate(horizon, &mut rng_h, 0);

    // Light user: a 3-job batch of 1-hour jobs each day.
    let light = UserProfile::with_mean_demand(
        UserId(1),
        NodeId::new(1),
        (3 * days) as usize,
        1.0,
    );
    let mut rng_l = root.substream(seed, "duel-light");
    let light_list = light.generate(horizon, &mut rng_l, heavy_list.len() as u64);

    Scenario {
        name: "fairness-duel",
        config,
        jobs: merge_users(vec![heavy_list, light_list]),
        horizon,
    }
}

/// A fleet-scale throughput scenario: `stations` machines over `days`
/// days with a synthetic user population of about one submitting user per
/// six stations, homes spread evenly across the fleet. With `pools > 1`
/// the fleet is partitioned into equal pool shards joined by a uniform
/// 300-second link, which routes the run through the space-parallel
/// sharded simulation (see `condor_core::shard`); `pools == 1` keeps the
/// classic monolithic configuration. Tracing is disabled — this scenario
/// exists to measure simulation throughput (`cluster/stations/*` and
/// `cluster/par/*` bench rows), not to be inspected event by event.
pub fn fleet_scale(seed: u64, stations: usize, pools: usize, days: u64) -> Scenario {
    assert!(pools >= 1, "at least one pool");
    assert!(stations >= pools, "{stations} stations cannot fill {pools} pools");
    let horizon = SimDuration::from_days(days);
    let mut config = ClusterConfig {
        stations,
        seed,
        record_trace: false,
        ..ClusterConfig::default()
    };
    if pools > 1 {
        config.topology = Some(PoolTopology::uniform(pools, SimDuration::from_secs(300)));
    }
    let root = SimRng::seed_from(seed);
    let users = (stations / 6).max(1);
    let jobs_per_user = (days as usize * 3).max(1);
    let mut per_user = Vec::new();
    let mut first_id = 0u64;
    for u in 0..users {
        let home = NodeId::new((u * stations / users) as u32);
        let profile = UserProfile::with_mean_demand(
            UserId(u as u32),
            home,
            jobs_per_user,
            2.0,
        );
        let mut rng = root.substream(seed, &format!("fleet-user-{u}"));
        let generated = profile.generate(horizon, &mut rng, first_id);
        first_id += generated.len() as u64;
        per_user.push(generated);
    }
    Scenario {
        name: "fleet-scale",
        config,
        jobs: merge_users(per_user),
        horizon,
    }
}

/// Stamps a deterministic mix of speedup curves onto a job trace: a
/// `saturating` fraction of jobs become I/O-bound
/// ([`SpeedupCurve::Saturating`] with a knee drawn uniformly from
/// 400–900 milli-CPUs), a `thrashing` fraction get the quadratic
/// [`SpeedupCurve::Thrashing`] collapse, and the rest stay
/// [`SpeedupCurve::Linear`]. Whole-machine grants run at reference speed
/// under every curve, so scenarios that never split a station are
/// bit-identical with or without this call — the curves only matter to
/// fractional-capacity placements.
pub fn assign_speedup_mix(jobs: &mut [JobSpec], seed: u64, saturating: f64, thrashing: f64) {
    assert!(
        saturating >= 0.0 && thrashing >= 0.0 && saturating + thrashing <= 1.0,
        "fractions {saturating}+{thrashing} must fit in [0, 1]"
    );
    let mut rng = SimRng::seed_from(seed ^ 0x5bee_d0b5);
    for job in jobs.iter_mut() {
        let roll = rng.uniform_f64();
        job.speedup = if roll < saturating {
            SpeedupCurve::Saturating {
                knee_milli: rng.uniform_range_u64(400, 900) as u32,
            }
        } else if roll < saturating + thrashing {
            SpeedupCurve::Thrashing
        } else {
            SpeedupCurve::Linear
        };
    }
}

/// The §5(4) what-if: the department adds SUN workstations. Half the
/// fleet is SUN (alternating pattern); the given fraction of each user's
/// jobs is recompiled for both architectures, the rest stay VAX-only.
pub fn mixed_arch_month(seed: u64, dual_binary_fraction: f64) -> Scenario {
    assert!(
        (0.0..=1.0).contains(&dual_binary_fraction),
        "fraction {dual_binary_fraction} outside [0, 1]"
    );
    let mut scenario = paper_month(seed);
    scenario.name = "mixed-arch-month";
    scenario.config.arch_pattern = vec![Arch::Vax, Arch::Sun];
    let mut rng = SimRng::seed_from(seed ^ 0x5e5e);
    for job in &mut scenario.jobs {
        job.binaries = if rng.chance(dual_binary_fraction) {
            ArchSet::both()
        } else {
            ArchSet::vax_only()
        };
    }
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::table1_rows;

    #[test]
    fn paper_month_matches_table1_structure() {
        let s = paper_month(1988);
        assert_eq!(s.jobs.len(), 918);
        let rows = table1_rows(&s.jobs);
        assert_eq!(rows.len(), 5);
        // Job counts are exact.
        let counts: Vec<usize> = rows.iter().map(|r| r.jobs).collect();
        assert_eq!(counts, vec![690, 138, 39, 40, 11]);
        // Demand means are statistical; tolerance scales with sample size
        // (the hyperexponential has a coefficient of variation well above
        // 1, so 39- and 11-job users are noisy).
        for (row, (_, n, mean)) in rows.iter().zip(PAPER_USERS) {
            let rel = (row.mean_demand_hours - mean).abs() / mean;
            // ~2 standard errors for a CV≈2.5 hyperexponential; tight
            // enough to catch a mis-parameterised distribution, loose
            // enough not to depend on one particular RNG stream.
            let tol = (5.0 / (n as f64).sqrt()).max(0.15);
            assert!(
                rel < tol,
                "user {} mean {:.2} vs target {mean} (tol {tol:.2})",
                row.user,
                row.mean_demand_hours
            );
        }
        // Total demand in the right ballpark (paper: 4771 h).
        let total: f64 = rows.iter().map(|r| r.total_demand_hours).sum();
        assert!(
            (3_300.0..=6_300.0).contains(&total),
            "total demand {total} h"
        );
        // Heavy user dominates demand.
        assert!(rows[0].pct_demand > 75.0, "A holds {}%", rows[0].pct_demand);
    }

    #[test]
    fn paper_month_ids_are_dense_and_ordered() {
        let s = paper_month(7);
        for (i, j) in s.jobs.iter().enumerate() {
            assert_eq!(j.id.0 as usize, i);
        }
        for w in s.jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // All homes within the 23-station fleet.
        assert!(s.jobs.iter().all(|j| j.home.as_usize() < 23));
    }

    #[test]
    fn one_week_is_proportionally_smaller() {
        let s = one_week(3);
        let month = paper_month(3);
        assert!(s.jobs.len() * 3 < month.jobs.len());
        assert_eq!(s.horizon, SimDuration::from_days(7));
        assert!(!s.jobs.is_empty());
    }

    #[test]
    fn fairness_duel_shape() {
        let s = fairness_duel(5, 8, 4);
        let heavy = s.jobs.iter().filter(|j| j.user == UserId(0)).count();
        let light = s.jobs.iter().filter(|j| j.user == UserId(1)).count();
        assert_eq!(light, 12);
        assert!(heavy > 8 * 4 * 3, "heavy user must oversubscribe");
    }

    #[test]
    fn mixed_arch_month_splits_binaries() {
        let s = mixed_arch_month(9, 0.5);
        assert_eq!(s.config.arch_pattern, vec![Arch::Vax, Arch::Sun]);
        let dual = s.jobs.iter().filter(|j| j.binaries == ArchSet::both()).count();
        let frac = dual as f64 / s.jobs.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "dual fraction {frac}");
        let all_vax = mixed_arch_month(9, 0.0);
        assert!(all_vax.jobs.iter().all(|j| j.binaries == ArchSet::vax_only()));
    }

    #[test]
    fn fleet_scale_partitions_cleanly() {
        let s = fleet_scale(11, 120, 4, 7);
        assert_eq!(s.config.stations, 120);
        assert!(!s.config.record_trace);
        let topo = s.config.topology.as_ref().expect("pools > 1 sets a topology");
        assert_eq!(topo.pools, 4);
        // Dense ids in arrival order, homes inside the fleet, no deps —
        // the shape the shard partitioner requires.
        for (i, j) in s.jobs.iter().enumerate() {
            assert_eq!(j.id.0 as usize, i);
            assert!(j.home.as_usize() < 120);
            assert!(j.depends_on.is_empty());
        }
        for w in s.jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // One pool keeps the monolithic configuration; the build stays
        // deterministic.
        assert!(fleet_scale(11, 120, 1, 7).config.topology.is_none());
        assert_eq!(fleet_scale(11, 120, 4, 7).jobs, s.jobs);
    }

    #[test]
    fn speedup_mix_is_deterministic_and_proportional() {
        let mut a = paper_month(4).jobs;
        let mut b = paper_month(4).jobs;
        assign_speedup_mix(&mut a, 77, 0.3, 0.2);
        assign_speedup_mix(&mut b, 77, 0.3, 0.2);
        assert_eq!(a, b);
        let sat = a
            .iter()
            .filter(|j| matches!(j.speedup, SpeedupCurve::Saturating { .. }))
            .count() as f64
            / a.len() as f64;
        let thrash = a
            .iter()
            .filter(|j| j.speedup == SpeedupCurve::Thrashing)
            .count() as f64
            / a.len() as f64;
        assert!((sat - 0.3).abs() < 0.07, "saturating fraction {sat}");
        assert!((thrash - 0.2).abs() < 0.07, "thrashing fraction {thrash}");
        for j in &a {
            if let SpeedupCurve::Saturating { knee_milli } = j.speedup {
                assert!((400..900).contains(&knee_milli));
            }
        }
        // Zero fractions leave the trace untouched.
        let mut c = paper_month(4).jobs;
        assign_speedup_mix(&mut c, 77, 0.0, 0.0);
        assert_eq!(c, paper_month(4).jobs);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = paper_month(42);
        let b = paper_month(42);
        assert_eq!(a.jobs, b.jobs);
        let c = paper_month(43);
        assert_ne!(a.jobs, c.jobs);
    }
}
