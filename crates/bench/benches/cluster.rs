//! End-to-end cluster simulation speed: how fast the full Condor model
//! simulates a day/week of 23-station operation, and how placement +
//! checkpoint costs scale with image size (the 5 s/MB rule).

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use condor_core::chaos::{ChaosConfig, ChaosGen, ChaosSchedule};
use condor_core::cluster::run_cluster;
use condor_core::config::ClusterConfig;
use condor_core::job::{JobId, JobSpec, UserId};
use condor_model::costs::CostModel;
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

fn jobs(n: u64, image_bytes: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 3) as u32),
            home: NodeId::new((i % 5) as u32),
            arrival: SimTime::from_secs(i * 13 * 60),
            demand: SimDuration::from_hours(1 + i % 4),
            image_bytes,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

fn config() -> ClusterConfig {
    ClusterConfig {
        stations: 23,
        record_trace: false, // measure the simulation, not trace memory
        ..ClusterConfig::default()
    }
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(20);
    for &days in &[1u64, 7] {
        group.bench_with_input(BenchmarkId::new("simulate_days", days), &days, |b, &d| {
            b.iter(|| {
                let out = run_cluster(config(), jobs(40, 500_000), SimDuration::from_days(d));
                black_box(out.totals.placements)
            });
        });
    }
    // Transfer-cost model: 5 s/MB means bigger images cost linearly more
    // local CPU; verify the accounting scales.
    for &mb in &[1u64, 4] {
        group.bench_with_input(BenchmarkId::new("image_mb", mb), &mb, |b, &mb| {
            b.iter(|| {
                let out = run_cluster(
                    config(),
                    jobs(20, mb * 1_000_000),
                    SimDuration::from_days(1),
                );
                let support: u64 = out.jobs.iter().map(|j| j.support_us).sum();
                black_box(support)
            });
        });
    }
    // Chaos injection: an armed-but-empty schedule must track
    // simulate_days/7 (fault injection is schedule data, not a hot-path
    // tax); the seeded schedule adds the recovery work itself.
    group.bench_function("chaos_empty_7d", |b| {
        b.iter(|| {
            let cfg = ClusterConfig {
                chaos: Some(ChaosConfig::default()),
                ..config()
            };
            let out = run_cluster(cfg, jobs(40, 500_000), SimDuration::from_days(7));
            black_box(out.totals.placements)
        });
    });
    let schedule = ChaosSchedule::generate(
        7,
        &ChaosGen { horizon: SimDuration::from_days(7), stations: 23, faults: 12 },
    );
    group.bench_function("chaos_faults_12_7d", |b| {
        b.iter(|| {
            let cfg = ClusterConfig {
                chaos: Some(ChaosConfig::new(schedule.clone())),
                ..config()
            };
            let out = run_cluster(cfg, jobs(40, 500_000), SimDuration::from_days(7));
            black_box(out.totals.ckpt_retries + out.totals.local_starts)
        });
    });
    group.finish();
    // Sanity check outside measurement: the cost model is exactly linear.
    let costs = CostModel::default();
    assert_eq!(
        costs.transfer_cpu_cost(4_000_000).as_millis(),
        4 * costs.transfer_cpu_cost(1_000_000).as_millis()
    );
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
