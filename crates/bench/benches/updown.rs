//! Up-Down decision cost vs cluster size.
//!
//! Paper §3.1: the coordinator consumed < 1% of its host even at 40
//! stations, and the authors projected comfortable scaling to 100. This
//! bench measures one full poll decision (snapshot → orders) at 23, 100,
//! and 1000 stations: decision cost must grow roughly linearly and stay
//! far below the 2-minute poll budget.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use condor_core::policy::{decide_from_views, StationView};
use condor_core::updown::{UpDown, UpDownConfig};
use condor_net::NodeId;
use condor_sim::time::SimTime;

fn make_views(n: usize) -> (Vec<StationView>, Vec<NodeId>) {
    let views: Vec<StationView> = (0..n)
        .map(|i| StationView {
            node: NodeId::new(i as u32),
            can_host: i % 3 == 0,
            free_cpu_milli: if i % 3 == 0 { 1000 } else { 0 },
            hosting_for: (i % 3 == 1).then(|| NodeId::new((i % 7) as u32)),
            waiting_jobs: if i % 5 == 0 { 4 } else { 0 },
        })
        .collect();
    let free = views.iter().filter(|v| v.can_host).map(|v| v.node).collect();
    (views, free)
}

fn bench_updown(c: &mut Criterion) {
    let mut group = c.benchmark_group("updown_decide");
    for &n in &[23usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (views, free) = make_views(n);
            let mut policy = UpDown::new(UpDownConfig::default());
            b.iter(|| {
                let orders = decide_from_views(&mut policy, SimTime::ZERO, &views, &free, 1);
                black_box(orders)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updown);
criterion_main!(benches);
