//! Checkpoint codec throughput.
//!
//! Paper §3.1: moving an image costs ≈ 5 s of period CPU per megabyte.
//! The codec itself must be far faster than that budget on modern hardware
//! (encode + CRC + decode of a half-megabyte image).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use condor_ckpt::delta::Delta;
use condor_ckpt::image::{CheckpointBuilder, CheckpointImage, FileMode, SegmentKind};

fn build_image(data_len: usize) -> CheckpointImage {
    CheckpointBuilder::new(42, 7)
        .segment(SegmentKind::Text, 0x0, vec![0x90u8; data_len / 4])
        .segment(SegmentKind::Data, 0x10_000, vec![0xABu8; data_len / 2])
        .segment(SegmentKind::Bss, 0x20_000, vec![0u8; data_len / 8])
        .segment(SegmentKind::Stack, 0xF0_000, vec![0xCDu8; data_len / 8])
        .registers(0x1234, 0xF456, (0..16).collect())
        .open_file(0, "/dev/tty", FileMode::Read, 0)
        .open_file(3, "/u/sim/results.out", FileMode::Append, 1 << 20)
        .build()
        .expect("quiescent")
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckpt_codec");
    // The paper's mean image is 0.5 MB; also test 2 MB for larger programs.
    for &size in &[500_000usize, 2_000_000] {
        let image = build_image(size);
        group.throughput(Throughput::Bytes(image.size_bytes()));
        group.bench_with_input(BenchmarkId::new("encode", size), &image, |b, img| {
            b.iter(|| black_box(img.encode()));
        });
        let frame: Bytes = image.encode();
        group.bench_with_input(BenchmarkId::new("decode", size), &frame, |b, f| {
            b.iter(|| black_box(CheckpointImage::decode(f.clone()).expect("valid")));
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", size), &image, |b, img| {
            b.iter(|| {
                let f = img.encode();
                black_box(CheckpointImage::decode(f).expect("valid"))
            });
        });
    }
    // Delta checkpoints: a 2 MB image with ~1% of pages dirtied. The
    // delta should encode in a fraction of the full-image time and size.
    {
        let base = build_image(2_000_000);
        let mut dirty = vec![0xABu8; 1_000_000];
        for i in (0..dirty.len()).step_by(97_000) {
            dirty[i] ^= 0xFF;
        }
        let new = CheckpointBuilder::new(42, 8)
            .segment(SegmentKind::Text, 0x0, vec![0x90u8; 500_000])
            .segment(SegmentKind::Data, 0x10_000, dirty)
            .segment(SegmentKind::Bss, 0x20_000, vec![0u8; 250_000])
            .segment(SegmentKind::Stack, 0xF0_000, vec![0xCDu8; 250_000])
            .registers(0x1234, 0xF456, (0..16).collect())
            .build()
            .expect("quiescent");
        assert!(
            Delta::diff(&base, &new).encoded_size() < new.size_bytes() / 10,
            "1% dirty pages should shrink the transfer by >10x"
        );
        group.bench_function("delta_diff_2mb_1pct", |b| {
            b.iter(|| black_box(Delta::diff(&base, &new)));
        });
        let delta = Delta::diff(&base, &new);
        group.bench_function("delta_apply_2mb_1pct", |b| {
            b.iter(|| black_box(delta.apply(&base).expect("apply")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
