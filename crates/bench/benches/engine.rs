//! Event-engine throughput: how many events per second the discrete-event
//! kernel dispatches. Supports the claim that month-scale cluster runs are
//! interactive (tens of milliseconds).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use condor_sim::engine::{Engine, Model, Scheduler};
use condor_sim::time::{SimDuration, SimTime};

struct PingPong {
    remaining: u64,
}

impl Model for PingPong {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::MILLISECOND, ev.wrapping_add(1));
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &events in &[1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("dispatch", events), &events, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(PingPong { remaining: n });
                eng.scheduler().at(SimTime::ZERO, 0u32);
                eng.run_to_completion();
                black_box(eng.events_dispatched())
            });
        });
    }
    // Queue churn with many concurrent timers (cancellation-heavy).
    group.bench_function("schedule_cancel_10k", |b| {
        b.iter(|| {
            let mut q = condor_sim::event::EventQueue::new();
            let tokens: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule(SimTime::from_millis(i % 977), i))
                .collect();
            for t in tokens.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
