//! Exports every figure's data series as CSV for external plotting.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_export [DIR]`
//! (default output directory: `figures/`).

use std::path::PathBuf;

use condor_bench::{is_light, run_scenario, EXPERIMENT_SEED};
use condor_core::job::UserId;
use condor_metrics::buckets::{checkpoint_rate_by_demand, leverage_by_demand, wait_ratio_by_demand};
use condor_metrics::export::CsvSeries;
use condor_sim::stats::Cdf;
use condor_sim::time::{SimDuration, SimTime};
use condor_workload::scenarios::{one_week, paper_month};

fn main() -> std::io::Result<()> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures".into())
        .into();
    let month = run_scenario(paper_month(EXPERIMENT_SEED));
    let week = run_scenario(one_week(EXPERIMENT_SEED));

    // Fig. 2 — demand CDF.
    {
        let hours: Vec<f64> = month.jobs.iter().map(|j| j.spec.demand.as_hours_f64()).collect();
        let cdf = Cdf::from_values(hours);
        let grid: Vec<f64> = (0..=24).map(f64::from).collect();
        let mut s = CsvSeries::new(&["demand_hours", "fraction_below"]);
        for (x, f) in cdf.evaluate_on(&grid) {
            s.row(&[x, f]);
        }
        s.write_to(&dir.join("fig2_demand_cdf.csv"))?;
    }

    // Figs. 3 & 7 — queue lengths (month hourly, week hourly).
    for (name, out) in [("fig3_month_queue.csv", &month), ("fig7_week_queue.csv", &week)] {
        let step = SimDuration::HOUR;
        let total = out.queue_total.resample_mean(SimTime::ZERO, out.horizon, step);
        let mut light = vec![0.0; total.len()];
        for (user, series) in &out.queue_by_user {
            if *user == UserId(0) {
                continue;
            }
            for (i, v) in series
                .resample_mean(SimTime::ZERO, out.horizon, step)
                .into_iter()
                .enumerate()
            {
                light[i] += v;
            }
        }
        let mut s = CsvSeries::new(&["hour", "total_queue", "light_queue"]);
        for (h, (t, l)) in total.iter().zip(&light).enumerate() {
            s.row(&[h as f64, *t, *l]);
        }
        s.write_to(&dir.join(name))?;
    }

    // Fig. 4 — wait ratio vs demand (all + light).
    {
        let mut s = CsvSeries::new(&["demand_mid_hours", "wait_ratio_all", "wait_ratio_light"]);
        let all = wait_ratio_by_demand(&month.jobs, |_| true);
        let light = wait_ratio_by_demand(&month.jobs, is_light);
        for p in &all {
            let l = light
                .iter()
                .find(|q| (q.mid() - p.mid()).abs() < 1e-9)
                .map(|q| q.mean)
                .unwrap_or(f64::NAN);
            s.row(&[p.mid(), p.mean, l]);
        }
        s.write_to(&dir.join("fig4_wait_ratio.csv"))?;
    }

    // Figs. 5 & 6 — utilization (month, week).
    for (name, out) in [
        ("fig5_month_utilization.csv", &month),
        ("fig6_week_utilization.csv", &week),
    ] {
        let system = out.system_utilization_hourly();
        let local = out.local_utilization_hourly();
        let mut s = CsvSeries::new(&["hour", "system_utilization", "local_utilization"]);
        for (h, (sys, loc)) in system.iter().zip(&local).enumerate() {
            s.row(&[h as f64, *sys, *loc]);
        }
        s.write_to(&dir.join(name))?;
    }

    // Fig. 8 — checkpoint rate vs demand.
    {
        let mut s = CsvSeries::new(&["demand_mid_hours", "checkpoints_per_hour", "jobs"]);
        for p in checkpoint_rate_by_demand(&month.jobs, |_| true) {
            s.row(&[p.mid(), p.mean, p.jobs as f64]);
        }
        s.write_to(&dir.join("fig8_checkpoint_rate.csv"))?;
    }

    // Fig. 9 — leverage vs demand.
    {
        let mut s = CsvSeries::new(&["demand_mid_hours", "mean_leverage", "jobs"]);
        for p in leverage_by_demand(&month.jobs, |_| true) {
            s.row(&[p.mid(), p.mean, p.jobs as f64]);
        }
        s.write_to(&dir.join("fig9_leverage.csv"))?;
    }

    println!("wrote 8 figure CSVs to {}", dir.display());
    Ok(())
}
