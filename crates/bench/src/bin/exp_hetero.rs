//! §5 future-work item 4 — heterogeneous architectures (the SUN port).
//!
//! The paper's planned SUN port raises a placement question: a job compiled
//! into two binaries can *start* anywhere, but once it has run on one
//! architecture its checkpoints are native images and it can never move to
//! the other. This experiment adds SUN machines to half the fleet and
//! sweeps the fraction of jobs recompiled for both architectures.
//!
//! Expected shape: with no dual binaries, half the fleet is useless to the
//! (all-VAX) workload; as the dual-binary fraction grows, consumed capacity
//! and wait ratios recover toward the homogeneous fleet's numbers.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_hetero`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_metrics::summary::{mean_wait_ratio, summarize};
use condor_metrics::table::{num, Align, Table};
use condor_workload::scenarios::{mixed_arch_month, paper_month};

fn main() {
    println!("== §5(4): half-SUN fleet vs dual-binary fraction (paper month workload) ==");
    let mut t = Table::new(
        vec![
            "Fleet / dual fraction",
            "Done",
            "Consumed (h)",
            "Mean wait ratio",
            "Arch-starved grants",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    // Baseline: the homogeneous all-VAX fleet.
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    let s = summarize(&out);
    t.row(vec![
        "all-VAX (paper)".into(),
        s.jobs_completed.to_string(),
        num(s.consumed_hours, 0),
        num(s.mean_wait_ratio, 2),
        out.totals.arch_starvation.to_string(),
    ]);
    t.rule();
    let mut waits = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let out = run_scenario(mixed_arch_month(EXPERIMENT_SEED, frac));
        let s = summarize(&out);
        let wait = mean_wait_ratio(&out.jobs, |_| true).unwrap_or(f64::NAN);
        t.row(vec![
            format!("half-SUN, {:.0}% dual", frac * 100.0),
            s.jobs_completed.to_string(),
            num(s.consumed_hours, 0),
            num(wait, 2),
            out.totals.arch_starvation.to_string(),
        ]);
        waits.push(wait);
    }
    println!("{}", t.render());
    println!(
        "the month's demand fits in the VAX half, so everything still finishes — but",
    );
    println!(
        "queueing collapses as binaries unlock the SUN half: mean wait ratio {:.1} (0% dual) → {:.1} (100% dual)",
        waits[0], waits[4]
    );
    println!("paper §5: 'the decision of placement should take into account the usage");
    println!("patterns of each type of workstation' — and binding jobs to their first");
    println!("architecture is what makes the dual-binary fraction matter.");
    assert!(
        waits[0] > 3.0 * waits[4],
        "dual binaries must collapse the wait ratio ({} vs {})",
        waits[0],
        waits[4]
    );
}
