//! Machine-readable benchmark snapshot: `BENCH_cluster.json`.
//!
//! Times the same scenarios as the Criterion benches (`cluster`, `engine`,
//! `updown`) with plain wall-clock measurement and writes one JSON file so
//! regressions are diffable in review. The engine and cluster rows also
//! report events/sec — the discrete-event kernel's throughput, which is
//! what the event-queue fast path is meant to move.
//!
//! Run with: `cargo run --release -p condor-bench --bin bench_report`
//! Writes `BENCH_cluster.json` in the working directory (override with
//! `BENCH_REPORT_PATH`).

use std::time::{Duration, Instant};

use condor_core::cluster::{run_cluster, run_cluster_with_sinks};
use condor_core::config::ClusterConfig;
use condor_core::job::{JobId, JobSpec, UserId};
use condor_core::telemetry::{RingSink, TraceSink, VecSink};
use condor_core::policy::{AllocationPolicy, StationView};
use condor_core::updown::{UpDown, UpDownConfig};
use condor_net::NodeId;
use condor_sim::engine::{Engine, Model, Scheduler};
use condor_sim::time::{SimDuration, SimTime};

/// One measured scenario: wall-clock per iteration, plus event throughput
/// where the scenario dispatches simulation events.
struct Row {
    name: String,
    iters: u64,
    wall_ms_per_iter: f64,
    events_per_iter: Option<u64>,
}

impl Row {
    fn events_per_sec(&self) -> Option<f64> {
        self.events_per_iter
            .map(|e| e as f64 / (self.wall_ms_per_iter / 1_000.0))
    }
}

/// Runs `f` repeatedly for at least `budget`, returning (iterations, mean
/// per-iteration wall time in ms, events per iteration). `f` returns the
/// number of simulation events it dispatched (0 for non-event scenarios).
fn measure(budget: Duration, mut f: impl FnMut() -> u64) -> (u64, f64, u64) {
    let events = f(); // warm-up iteration, also records the event count
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        std::hint::black_box(f());
        iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() * 1_000.0 / iters as f64;
    (iters, per_iter, events)
}

fn jobs(n: u64, image_bytes: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 3) as u32),
            home: NodeId::new((i % 5) as u32),
            arrival: SimTime::from_secs(i * 13 * 60),
            demand: SimDuration::from_hours(1 + i % 4),
            image_bytes,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
        })
        .collect()
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig::builder()
        .stations(23)
        .record_trace(false)
        .build()
        .expect("bench config is valid")
}

struct PingPong {
    remaining: u64,
}

impl Model for PingPong {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::MILLISECOND, ev.wrapping_add(1));
        }
    }
}

fn make_views(n: usize) -> (Vec<StationView>, Vec<NodeId>) {
    let views: Vec<StationView> = (0..n)
        .map(|i| StationView {
            node: NodeId::new(i as u32),
            can_host: i % 3 == 0,
            hosting_for: (i % 3 == 1).then(|| NodeId::new((i % 7) as u32)),
            waiting_jobs: if i % 5 == 0 { 4 } else { 0 },
        })
        .collect();
    let free = views.iter().filter(|v| v.can_host).map(|v| v.node).collect();
    (views, free)
}

fn json_escape_free(name: &str) -> &str {
    // Scenario names are ASCII identifiers with slashes — assert rather
    // than implement escaping nobody needs.
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || "/_-.".contains(c)),
        "scenario name {name:?} would need JSON escaping"
    );
    name
}

fn render_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"suite\": \"condor-bench\",\n");
    s.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", json_escape_free(&r.name)));
        s.push_str(&format!("\"iters\": {}, ", r.iters));
        s.push_str(&format!("\"wall_ms_per_iter\": {:.3}", r.wall_ms_per_iter));
        if let Some(e) = r.events_per_iter {
            s.push_str(&format!(", \"events_per_iter\": {e}"));
            s.push_str(&format!(", \"events_per_sec\": {:.0}", r.events_per_sec().unwrap()));
        }
        s.push('}');
        if i + 1 < rows.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("BENCH_REPORT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    let mut rows = Vec::new();

    // cluster: full-model simulation speed (as in benches/cluster.rs).
    for days in [1u64, 7] {
        let (iters, ms, events) = measure(budget, || {
            let out = run_cluster(cluster_config(), jobs(40, 500_000), SimDuration::from_days(days));
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/simulate_days/{days}"),
            iters,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
        });
    }
    for mb in [1u64, 4] {
        let (iters, ms, events) = measure(budget, || {
            let out = run_cluster(cluster_config(), jobs(20, mb * 1_000_000), SimDuration::from_days(1));
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/image_mb/{mb}"),
            iters,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
        });
    }

    // telemetry: per-event cost of the sink fan-out. 0 extra sinks is the
    // baseline (StatsSink alone); the others add buffering observers.
    for extra in [0usize, 4] {
        let (iters, ms, events) = measure(budget, || {
            let sinks: Vec<Box<dyn TraceSink>> = (0..extra)
                .map(|i| -> Box<dyn TraceSink> {
                    if i % 2 == 0 {
                        Box::new(VecSink::new())
                    } else {
                        Box::new(RingSink::new(256))
                    }
                })
                .collect();
            let out = run_cluster_with_sinks(
                cluster_config(),
                jobs(40, 500_000),
                SimDuration::from_days(1),
                sinks,
            );
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/extra_sinks/{extra}"),
            iters,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
        });
    }

    // observability: the same run with the span folder and the online
    // invariant auditor attached — the overhead `condor spans`/`condor
    // audit` pay relative to the extra_sinks/0 baseline.
    {
        let (iters, ms, events) = measure(budget, || {
            let sinks: Vec<Box<dyn TraceSink>> = vec![
                Box::new(condor_core::spans::SpanSink::new()),
                Box::new(condor_core::audit::AuditSink::new()),
            ];
            let out = run_cluster_with_sinks(
                cluster_config(),
                jobs(40, 500_000),
                SimDuration::from_days(1),
                sinks,
            );
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/span_audit_sinks".to_string(),
            iters,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
        });
    }

    // engine: raw dispatch throughput (as in benches/engine.rs).
    for n in [1_000u64, 100_000] {
        let (iters, ms, events) = measure(budget, || {
            let mut eng = Engine::new(PingPong { remaining: n });
            eng.scheduler().at(SimTime::ZERO, 0u32);
            eng.run_to_completion();
            eng.events_dispatched()
        });
        rows.push(Row {
            name: format!("engine/dispatch/{n}"),
            iters,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
        });
    }
    let (iters, ms, _) = measure(budget, || {
        let mut q = condor_sim::event::EventQueue::new();
        let tokens: Vec<_> = (0..10_000u64)
            .map(|i| q.schedule(SimTime::from_millis(i % 977), i))
            .collect();
        for t in tokens.iter().step_by(2) {
            q.cancel(*t);
        }
        let mut n = 0u64;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });
    rows.push(Row {
        name: "engine/schedule_cancel_10k".into(),
        iters,
        wall_ms_per_iter: ms,
        events_per_iter: Some(10_000),
    });

    // updown: one poll decision at three fleet sizes (as in benches/updown.rs).
    for n in [23usize, 100, 1_000] {
        let (views, free) = make_views(n);
        let mut policy = UpDown::new(UpDownConfig::default());
        let (iters, ms, _) = measure(budget, || {
            let orders = policy.decide(SimTime::ZERO, &views, &free, 1);
            orders.len() as u64
        });
        rows.push(Row {
            name: format!("updown_decide/{n}"),
            iters,
            wall_ms_per_iter: ms,
            events_per_iter: None,
        });
    }

    let json = render_json(&rows);
    let path = std::env::var("BENCH_REPORT_PATH").unwrap_or_else(|_| "BENCH_cluster.json".into());
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("{json}");
    println!("wrote {path}");
}
