//! Machine-readable benchmark snapshot: `BENCH_cluster.json`.
//!
//! Times the same scenarios as the Criterion benches (`cluster`, `engine`,
//! `updown`) with plain wall-clock measurement and writes one JSON file so
//! regressions are diffable in review. The engine and cluster rows also
//! report events/sec — the discrete-event kernel's throughput, which is
//! what the event-queue fast path is meant to move.
//!
//! The `cluster/attrib/*` rows decompose where cluster time goes (see
//! DESIGN.md § Performance): `emit_only` is the trace/stats sink path in
//! isolation, `flips_only` is a job-free fleet with polling effectively
//! disabled (owner-transition cost), `poll_only` is a job-free, flip-free
//! fleet (pure coordinator-poll cost — all memoized after the first
//! poll), and `queue_only` reserves almost the whole fleet so arrivals
//! queue without being placed. The `_200`/`_10k` variants rerun the
//! station-bound scenarios at larger fleets to expose per-poll scaling.
//!
//! The `cluster/stations/{1000,10k,100k}` rows run the fleet-scale
//! scenario serially; the `cluster/par/{1,2,4,8}` rows run the same
//! 10k-station fleet split into eight pools through the space-parallel
//! sharded runner, recording the pinned worker count per row (see
//! DESIGN.md § Parallel simulation for how to read a regression there).
//!
//! Every row reports the *fastest* of its measured iterations along with
//! `iters_measured`: fast scenarios iterate for `BENCH_REPORT_MS`, slow
//! ones (over 500 ms/iter) get up to three iterations bounded by
//! `BENCH_REPORT_SLOW_MS`, so a single descheduling spike cannot read as
//! a regression.
//!
//! Run with: `cargo run --release -p condor-bench --bin bench_report`
//! Writes `BENCH_cluster.json` in the working directory (override with
//! `BENCH_REPORT_PATH`). With `--quick`, times every scenario once,
//! checks that each event scenario reports nonzero throughput, and writes
//! nothing — the CI smoke mode.

use std::time::{Duration, Instant, SystemTime};

use condor_core::chaos::{ChaosConfig, ChaosGen, ChaosSchedule};
use condor_core::cluster::Run;
use condor_core::config::{ClusterConfig, Reservation};
use condor_core::job::{JobId, JobSpec, UserId};
use condor_core::policy::{decide_from_views, StationView};
use condor_core::telemetry::{RingSink, StatsSink, TraceSink, VecSink};
use condor_core::trace::{TraceEvent, TraceKind};
use condor_core::updown::{UpDown, UpDownConfig};
use condor_model::owner::OwnerConfig;
use condor_net::NodeId;
use condor_sim::engine::{Engine, Model, Scheduler};
use condor_sim::time::{SimDuration, SimTime};
use condor_workload::scenarios::fleet_scale;

/// Bumped whenever the report's JSON shape changes incompatibly.
/// `/3`: `iters` became `iters_measured`, `wall_ms_per_iter` reports the
/// *fastest* measured iteration (min-of-N), and poll-heavy rows carry
/// `polls`/`poll_memo_hits`.
const SCHEMA: &str = "condor-bench-report/3";

/// One measured scenario: wall-clock of the best iteration, plus event
/// throughput where the scenario dispatches simulation events.
struct Row {
    name: String,
    /// Timed iterations behind `wall_ms_per_iter` (the warm-up iteration
    /// is not counted). A slow scenario that hit the time cap before its
    /// third iteration reports how many it actually got.
    iters_measured: u64,
    /// Fastest measured iteration, milliseconds.
    wall_ms_per_iter: f64,
    events_per_iter: Option<u64>,
    /// Worker threads the scenario ran with. `None` for single-threaded
    /// scenarios; the `cluster/par/*` rows record their pinned count so a
    /// regression diff can tell "slower" from "ran with fewer workers".
    threads: Option<usize>,
    /// Coordinator polls executed and how many of them were answered from
    /// the memo fast path, for the rows where that ratio is the point.
    memo: Option<(u64, u64)>,
}

impl Row {
    fn events_per_sec(&self) -> Option<f64> {
        self.events_per_iter
            .map(|e| e as f64 / (self.wall_ms_per_iter / 1_000.0))
    }
}

/// Report provenance, captured once at startup so a long run doesn't
/// straddle a timestamp.
struct Meta {
    git_rev: String,
    created_utc: String,
}

impl Meta {
    fn capture() -> Meta {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let created_utc = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| utc_string(d.as_secs()))
            .unwrap_or_else(|_| "unknown".to_string());
        Meta { git_rev, created_utc }
    }
}

/// Renders seconds-since-epoch as `YYYY-MM-DDTHH:MM:SSZ` without pulling
/// in a date crate (civil-from-days per Howard Hinnant's algorithm).
fn utc_string(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let secs = epoch_secs % 86_400;
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe as i64 + era * 400 + i64::from(m <= 2);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        secs / 3_600,
        (secs % 3_600) / 60,
        secs % 60
    )
}

/// A single iteration longer than this is a "slow" scenario: it cannot
/// amortize noise across many iterations inside the budget, so it gets
/// the min-of-3 treatment instead.
const SLOW_ITER: Duration = Duration::from_millis(500);

/// Total measured time a slow scenario may consume chasing its three
/// iterations (override with `BENCH_REPORT_SLOW_MS`). A scenario whose
/// single iteration blows even this cap stands on one measurement — and
/// says so via `iters_measured`.
fn slow_cap() -> Duration {
    Duration::from_millis(
        std::env::var("BENCH_REPORT_SLOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000),
    )
}

/// CI perf gate for `--quick` mode: the fleet-scale 1,000-station row must
/// clear this floor, set ~3x below the recorded quick-mode baseline
/// (~3.2M events/sec on the reference host; the full-budget numbers live
/// in BENCH_cluster.json). Generous enough that shared-runner noise never
/// trips it; tight enough that an accidental O(stations) term creeping
/// back into the poll path (the regression class this report exists to
/// catch) fails CI instead of landing silently. Override with
/// `BENCH_SMOKE_FLOOR_EPS` (events/sec); 0 disables.
const QUICK_FLOOR_1000_EPS: f64 = 1_000_000.0;

fn perf_floor_check(rows: &[Row]) {
    let floor = std::env::var("BENCH_SMOKE_FLOOR_EPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(QUICK_FLOOR_1000_EPS);
    if floor <= 0.0 {
        return;
    }
    let row = rows
        .iter()
        .find(|r| r.name == "cluster/stations/1000")
        .expect("fleet-scale 1000-station row missing from report");
    let eps = row.events_per_sec().unwrap_or(0.0);
    if eps < floor {
        eprintln!(
            "perf smoke FAILED: cluster/stations/1000 ran at {eps:.0} events/sec, floor is {floor:.0}"
        );
        std::process::exit(1);
    }
    println!("perf smoke ok: cluster/stations/1000 at {eps:.0} events/sec (floor {floor:.0})");
}

/// Times `f` repeatedly and keeps the *fastest* iteration, returning
/// (iterations measured, best per-iteration wall time in ms, events per
/// iteration). Minima are the robust estimator on a shared host — outside
/// interference only ever adds time. Fast scenarios iterate until
/// `budget` is spent; slow scenarios (single iteration over [`SLOW_ITER`])
/// still get up to three measured iterations so one descheduling spike
/// cannot masquerade as a regression, bounded by [`slow_cap`]. `f` returns
/// the number of simulation events it dispatched (0 for non-event
/// scenarios). A warm-up iteration always precedes timing and at least one
/// iteration is always timed, so a zero budget (the `--quick` smoke mode)
/// times each scenario exactly once.
fn measure(budget: Duration, mut f: impl FnMut() -> u64) -> (u64, f64, u64) {
    let events = f(); // warm-up iteration, also records the event count
    let cap = slow_cap();
    let start = Instant::now();
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    loop {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
        iters += 1;
        let total = start.elapsed();
        let done = if budget.is_zero() {
            true // --quick: one timed iteration regardless of speed
        } else if best > SLOW_ITER {
            iters >= 3 || total >= cap
        } else {
            total >= budget
        };
        if done {
            break;
        }
    }
    (iters, best.as_secs_f64() * 1_000.0, events)
}

fn jobs(n: u64, image_bytes: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 3) as u32),
            home: NodeId::new((i % 5) as u32),
            arrival: SimTime::from_secs(i * 13 * 60),
            demand: SimDuration::from_hours(1 + i % 4),
            image_bytes,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig::builder()
        .stations(23)
        .record_trace(false)
        .build()
        .expect("bench config is valid")
}

/// An owner model that (after the activity clamp) almost never becomes
/// active: with a flat zero profile the effective activity floors at
/// 0.005, and a decade-long mean active period stretches idle dwells past
/// any simulated horizon. Stations therefore stay idle for the whole run.
fn owners_never_flip() -> OwnerConfig {
    OwnerConfig {
        profile: condor_model::diurnal::DiurnalProfile::flat(0.0),
        mean_active_period: SimDuration::from_days(3_650),
        ..OwnerConfig::default()
    }
}

struct PingPong {
    remaining: u64,
}

impl Model for PingPong {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::MILLISECOND, ev.wrapping_add(1));
        }
    }
}

fn make_views(n: usize) -> (Vec<StationView>, Vec<NodeId>) {
    let views: Vec<StationView> = (0..n)
        .map(|i| StationView {
            node: NodeId::new(i as u32),
            can_host: i % 3 == 0,
            free_cpu_milli: if i % 3 == 0 { 1000 } else { 0 },
            hosting_for: (i % 3 == 1).then(|| NodeId::new((i % 7) as u32)),
            waiting_jobs: if i % 5 == 0 { 4 } else { 0 },
        })
        .collect();
    let free = views.iter().filter(|v| v.can_host).map(|v| v.node).collect();
    (views, free)
}

/// A representative mix of trace events for the emit-path scenario: the
/// two hot classes (owner flips, polls) plus the job-lifecycle kinds the
/// stats sink actually has to act on.
fn emit_sample_events() -> Vec<TraceEvent> {
    let at = SimTime::from_secs(60);
    let on = NodeId::new(3);
    vec![
        TraceEvent { at, kind: TraceKind::OwnerActive { station: on } },
        TraceEvent { at, kind: TraceKind::OwnerIdle { station: on } },
        TraceEvent { at, kind: TraceKind::JobArrived { job: JobId(1) } },
        TraceEvent { at, kind: TraceKind::JobStarted { job: JobId(1), on } },
        TraceEvent { at, kind: TraceKind::OwnerActive { station: on } },
        TraceEvent { at, kind: TraceKind::JobSuspended { job: JobId(1), on } },
        TraceEvent { at, kind: TraceKind::JobResumedInPlace { job: JobId(1), on } },
        TraceEvent { at, kind: TraceKind::OwnerIdle { station: on } },
        TraceEvent { at, kind: TraceKind::JobCompleted { job: JobId(1), on } },
        TraceEvent {
            at,
            kind: TraceKind::CoordinatorPolled {
                free_machines: 10,
                waiting_jobs: 2,
                placements: 1,
                preemptions: 0,
            },
        },
    ]
}

/// Worker threads available to the parallel rows. `available_parallelism`
/// alone can report 1 on multi-core hosts (restrictive affinity masks,
/// containers with no cgroup CPU metadata), so cross-check against the
/// `/proc/cpuinfo` processor count and take the larger answer.
fn detect_threads() -> usize {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    avail.max(cpuinfo).max(1)
}

fn json_escape_free(name: &str) -> &str {
    // Scenario names are ASCII identifiers with slashes — assert rather
    // than implement escaping nobody needs.
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || "/_-.:".contains(c)),
        "scenario name {name:?} would need JSON escaping"
    );
    name
}

fn render_json(meta: &Meta, rows: &[Row]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"suite\": \"condor-bench\",\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"git_rev\": \"{}\",\n", json_escape_free(&meta.git_rev)));
    s.push_str(&format!("  \"created_utc\": \"{}\",\n", json_escape_free(&meta.created_utc)));
    s.push_str(&format!("  \"threads_available\": {},\n", detect_threads()));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", json_escape_free(&r.name)));
        s.push_str(&format!("\"iters_measured\": {}, ", r.iters_measured));
        s.push_str(&format!("\"wall_ms_per_iter\": {:.3}", r.wall_ms_per_iter));
        if let Some(e) = r.events_per_iter {
            s.push_str(&format!(", \"events_per_iter\": {e}"));
            s.push_str(&format!(", \"events_per_sec\": {:.0}", r.events_per_sec().unwrap()));
        }
        if let Some(t) = r.threads {
            s.push_str(&format!(", \"threads\": {t}"));
        }
        if let Some((polls, hits)) = r.memo {
            s.push_str(&format!(", \"polls\": {polls}, \"poll_memo_hits\": {hits}"));
        }
        s.push('}');
        if i + 1 < rows.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let meta = Meta::capture();
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick {
        Duration::ZERO
    } else {
        Duration::from_millis(
            std::env::var("BENCH_REPORT_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300),
        )
    };
    let mut rows = Vec::new();

    // cluster: full-model simulation speed (as in benches/cluster.rs).
    for days in [1u64, 7] {
        let (iters, ms, events) = measure(budget, || {
            let out = Run::new(cluster_config())
                .specs(jobs(40, 500_000))
                .horizon(SimDuration::from_days(days))
                .execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/simulate_days/{days}"),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }
    for mb in [1u64, 4] {
        let (iters, ms, events) = measure(budget, || {
            let out = Run::new(cluster_config())
                .specs(jobs(20, mb * 1_000_000))
                .horizon(SimDuration::from_days(1))
                .execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/image_mb/{mb}"),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // frac: the fractional-capacity path. `off` is the simulate_days/7
    // scenario under its canonical name (whole-machine demands through the
    // legacy exclusivity fast path — must track simulate_days/7 within
    // noise); `on` reruns the same burst with half-CPU demands packed by
    // FracPolicy, pricing the capacity-vector bookkeeping and the
    // JobGranted emissions.
    {
        let (iters, ms, events) = measure(budget, || {
            let out = Run::new(cluster_config())
                .specs(jobs(40, 500_000))
                .horizon(SimDuration::from_days(7))
                .execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/frac/off".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
        let (iters, ms, events) = measure(budget, || {
            let cfg = ClusterConfig {
                policy: condor_core::config::PolicyKind::Frac,
                ..cluster_config()
            };
            let specs: Vec<JobSpec> = jobs(40, 500_000)
                .into_iter()
                .map(|mut j| {
                    j.resources = condor_model::station::ResourceVec::share(500);
                    j
                })
                .collect();
            let out = Run::new(cfg).specs(specs).horizon(SimDuration::from_days(7)).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/frac/on".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // chaos: the same week with fault injection armed. `empty` prices the
    // standing cost of an armed-but-silent schedule (must track
    // simulate_days/7 — chaos is schedule data, not a hot-path branch tax);
    // `faults_12` adds a seeded 12-fault schedule's recovery work.
    {
        let (iters, ms, events) = measure(budget, || {
            let cfg = ClusterConfig {
                chaos: Some(ChaosConfig::default()),
                ..cluster_config()
            };
            let out = Run::new(cfg).specs(jobs(40, 500_000)).horizon(SimDuration::from_days(7)).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/chaos/empty".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
        let gen = ChaosGen { horizon: SimDuration::from_days(7), stations: 23, faults: 12 };
        let schedule = ChaosSchedule::generate(7, &gen);
        let (iters, ms, events) = measure(budget, || {
            let cfg = ClusterConfig {
                chaos: Some(ChaosConfig::new(schedule.clone())),
                ..cluster_config()
            };
            let out = Run::new(cfg).specs(jobs(40, 500_000)).horizon(SimDuration::from_days(7)).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/chaos/faults_12".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // redundancy: the speculative-replication policy family. `off` is the
    // simulate_days/7 week under PolicyKind::Redundant with replication
    // disabled — bit-identical to Up-Down by the golden-trace pin, so it
    // must track simulate_days/7 within noise (the off-path tax is the
    // k == 0 early-returns). `k2` arms two replicas per job and prices
    // the full machinery: spawn scans, demand reclaim, replica events.
    {
        use condor_core::redundancy::RedundancyConfig;
        for (label, rc) in [
            ("off", RedundancyConfig::off()),
            ("k2", RedundancyConfig::default()),
        ] {
            let (iters, ms, events) = measure(budget, || {
                let cfg = ClusterConfig {
                    policy: condor_core::config::PolicyKind::Redundant(rc),
                    ..cluster_config()
                };
                let out = Run::new(cfg)
                    .specs(jobs(40, 500_000))
                    .horizon(SimDuration::from_days(7))
                    .execute();
                out.events_dispatched
            });
            rows.push(Row {
                name: format!("cluster/redundancy/{label}"),
                iters_measured: iters,
                memo: None,
                wall_ms_per_iter: ms,
                events_per_iter: Some(events),
                threads: None,
            });
        }
    }

    // cluster at paper-future scale: the coordinator poll is the station-
    // bound phase, so this row is the scaling check for the incremental
    // poll path (compare per-event cost against simulate_days/7 at 23).
    {
        let (iters, ms, events) = measure(budget, || {
            let cfg = ClusterConfig::builder()
                .stations(200)
                .record_trace(false)
                .build()
                .expect("bench config is valid");
            let out = Run::new(cfg).specs(jobs(40, 500_000)).horizon(SimDuration::from_days(7)).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/stations/200".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // cluster at fleet scale: the fleet-scale scenario at 1k and 10k
    // stations, run serially — the baselines the cluster/par rows are
    // read against. In --quick mode the horizon drops from seven days to
    // one so the CI smoke stays fast.
    let fleet_days = if quick { 1 } else { 7 };
    for (stations, label) in [(1_000usize, "1000"), (10_000, "10k"), (100_000, "100k")] {
        let mut memo = (0u64, 0u64);
        let (iters, ms, events) = measure(budget, || {
            let s = fleet_scale(1988, stations, 1, fleet_days);
            let out = Run::new(s.config).specs(s.jobs).horizon(s.horizon).execute();
            memo = (out.totals.polls, out.totals.poll_memo_hits);
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/stations/{label}"),
            iters_measured: iters,
            memo: Some(memo),
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // cluster/par: the same 10k-station scenario split into eight pools
    // and run through the space-parallel sharded runner at pinned worker
    // counts. CONDOR_THREADS, when set, caps the sweep so a small CI host
    // can skip the oversubscribed points.
    {
        let cap = std::env::var("CONDOR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        for threads in [1usize, 2, 4, 8] {
            if cap.is_some_and(|c| threads > c) {
                continue;
            }
            let (iters, ms, events) = measure(budget, || {
                let s = fleet_scale(1988, 10_000, 8, fleet_days);
                Run::new(s.config).specs(s.jobs).horizon(s.horizon).threads(threads).execute()
                    .events_dispatched
            });
            rows.push(Row {
                name: format!("cluster/par/{threads}"),
                iters_measured: iters,
                memo: None,
                wall_ms_per_iter: ms,
                events_per_iter: Some(events),
                threads: Some(threads),
            });
        }
    }

    // Attribution: each row isolates one phase of the cluster loop.
    // emit_only — the per-event sink path (stats classification) alone.
    {
        let events = emit_sample_events();
        let reps = 10_000usize;
        let (iters, ms, n) = measure(budget, || {
            let mut sink = StatsSink::new();
            for _ in 0..reps {
                for ev in &events {
                    sink.record(std::hint::black_box(ev));
                }
            }
            (reps * events.len()) as u64
        });
        rows.push(Row {
            name: "cluster/attrib/emit_only".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(n),
            threads: None,
        });
    }
    // flips_only — no jobs, polling pushed past the horizon: owner flips.
    // poll_only — no jobs, owners pinned idle: coordinator polls. With no
    // station ever changing, every poll after the first hits the memo fast
    // path, so poll_only prices the memoized poll; its `poll_memo_hits`
    // field proves it. Repeated at 200 and 10k stations to expose
    // per-poll scaling.
    for (stations, suffix) in [(23usize, ""), (200, "_200"), (10_000, "_10k")] {
        let (iters, ms, events) = measure(budget, || {
            let costs = condor_model::costs::CostModel {
                coordinator_poll_interval: SimDuration::from_days(30),
                ..Default::default()
            };
            let cfg = ClusterConfig::builder()
                .stations(stations)
                .record_trace(false)
                .costs(costs)
                .build()
                .expect("bench config is valid");
            let out = Run::new(cfg).horizon(SimDuration::from_days(7)).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/attrib/flips_only{suffix}"),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
        let mut memo = (0u64, 0u64);
        let (iters, ms, events) = measure(budget, || {
            let cfg = ClusterConfig::builder()
                .stations(stations)
                .record_trace(false)
                .owner(owners_never_flip())
                .build()
                .expect("bench config is valid");
            let out = Run::new(cfg).horizon(SimDuration::from_days(7)).execute();
            memo = (out.totals.polls, out.totals.poll_memo_hits);
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/attrib/poll_only{suffix}"),
            iters_measured: iters,
            memo: Some(memo),
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }
    // queue_only — all but one machine fenced by a standing reservation
    // (a whole-fleet reservation is rejected by config validation), owners
    // pinned idle, jobs homed away from the holder: arrivals accumulate in
    // queues with almost no placements, so queue bookkeeping dominates.
    {
        let (iters, ms, events) = measure(budget, || {
            let cfg = ClusterConfig::builder()
                .stations(23)
                .record_trace(false)
                .owner(owners_never_flip())
                .reservation(Reservation {
                    holder: NodeId::new(0),
                    machines: 22,
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(365 * 86_400),
                })
                .build()
                .expect("bench config is valid");
            let mut specs = jobs(40, 500_000);
            for s in &mut specs {
                s.home = NodeId::new(1 + (s.id.0 % 5) as u32);
            }
            let out = Run::new(cfg).specs(specs).horizon(SimDuration::from_days(7)).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/attrib/queue_only".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // telemetry: per-event cost of the sink fan-out. 0 extra sinks is the
    // baseline (StatsSink alone); the others add buffering observers.
    for extra in [0usize, 4] {
        let (iters, ms, events) = measure(budget, || {
            let sinks: Vec<Box<dyn TraceSink + Send>> = (0..extra)
                .map(|i| -> Box<dyn TraceSink + Send> {
                    if i % 2 == 0 {
                        Box::new(VecSink::new())
                    } else {
                        Box::new(RingSink::new(256))
                    }
                })
                .collect();
            let out = sinks.into_iter().fold(Run::new(cluster_config()).specs(jobs(40, 500_000)).horizon(SimDuration::from_days(1)), Run::sink).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: format!("cluster/extra_sinks/{extra}"),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // observability: the same run with the span folder and the online
    // invariant auditor attached — the overhead `condor spans`/`condor
    // audit` pay relative to the extra_sinks/0 baseline.
    {
        let (iters, ms, events) = measure(budget, || {
            let sinks: Vec<Box<dyn TraceSink + Send>> = vec![
                Box::new(condor_core::spans::SpanSink::new()),
                Box::new(condor_core::audit::AuditSink::new()),
            ];
            let out = sinks.into_iter().fold(Run::new(cluster_config()).specs(jobs(40, 500_000)).horizon(SimDuration::from_days(1)), Run::sink).execute();
            out.events_dispatched
        });
        rows.push(Row {
            name: "cluster/span_audit_sinks".to_string(),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }

    // engine: raw dispatch throughput (as in benches/engine.rs).
    for n in [1_000u64, 100_000] {
        let (iters, ms, events) = measure(budget, || {
            let mut eng = Engine::new(PingPong { remaining: n });
            eng.scheduler().at(SimTime::ZERO, 0u32);
            eng.run_to_completion();
            eng.events_dispatched()
        });
        rows.push(Row {
            name: format!("engine/dispatch/{n}"),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: Some(events),
            threads: None,
        });
    }
    let (iters, ms, _) = measure(budget, || {
        let mut q = condor_sim::event::EventQueue::new();
        let tokens: Vec<_> = (0..10_000u64)
            .map(|i| q.schedule(SimTime::from_millis(i % 977), i))
            .collect();
        for t in tokens.iter().step_by(2) {
            q.cancel(*t);
        }
        let mut n = 0u64;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });
    rows.push(Row {
        name: "engine/schedule_cancel_10k".into(),
        iters_measured: iters,
        memo: None,
        wall_ms_per_iter: ms,
        events_per_iter: Some(10_000),
        threads: None,
    });

    // updown: one poll decision at three fleet sizes (as in benches/updown.rs).
    for n in [23usize, 100, 1_000] {
        let (views, free) = make_views(n);
        let mut policy = UpDown::new(UpDownConfig::default());
        let (iters, ms, _) = measure(budget, || {
            let orders = decide_from_views(&mut policy, SimTime::ZERO, &views, &free, 1);
            orders.len() as u64
        });
        rows.push(Row {
            name: format!("updown_decide/{n}"),
            iters_measured: iters,
            memo: None,
            wall_ms_per_iter: ms,
            events_per_iter: None,
            threads: None,
        });
    }

    let json = render_json(&meta, &rows);
    if quick {
        // Smoke mode: validate, print, write nothing.
        let mut bad = Vec::new();
        for r in &rows {
            if r.events_per_iter == Some(0) || r.events_per_sec().is_some_and(|e| !e.is_finite() || e <= 0.0) {
                bad.push(r.name.clone());
            }
        }
        println!("{json}");
        if bad.is_empty() {
            println!("quick check ok: {} scenarios, all event rows nonzero", rows.len());
        } else {
            eprintln!("quick check FAILED: zero events/sec in {bad:?}");
            std::process::exit(1);
        }
        perf_floor_check(&rows);
        return;
    }
    let path = std::env::var("BENCH_REPORT_PATH").unwrap_or_else(|_| "BENCH_cluster.json".into());
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("{json}");
    println!("wrote {path}");
}
