//! §5 future-work item 3 — advance reservations.
//!
//! "Reservations guarantee computing capacity for users in advance in order
//! to conduct experiments in distributed computations." A researcher books
//! three machines for a 12-hour window while the heavy user floods the
//! system; with the reservation their batch runs on time, without it the
//! batch fights the flood.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_reservation`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::Run;
use condor_core::config::{ClusterConfig, PolicyKind, Reservation};
use condor_core::job::{JobId, JobSpec, JobState, UserId};
use condor_core::updown::UpDownConfig;
use condor_metrics::replicate::par_map;
use condor_metrics::table::{num, Align, Table};
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

fn jobs() -> Vec<JobSpec> {
    let mut jobs: Vec<JobSpec> = (0..60)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::ZERO,
            demand: SimDuration::from_hours(40),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect();
    // The researcher's distributed-computation batch: 6 two-hour runs at
    // hour 48.
    for k in 0..6u64 {
        jobs.push(JobSpec {
            id: JobId(60 + k),
            user: UserId(1),
            home: NodeId::new(1),
            arrival: SimTime::from_hours(48),
            demand: SimDuration::from_hours(2),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    jobs
}

fn run(policy: PolicyKind, reserve: bool) -> (String, f64, usize, u64) {
    let reservations = if reserve {
        vec![Reservation {
            holder: NodeId::new(1),
            machines: 3,
            from: SimTime::from_hours(48),
            until: SimTime::from_hours(60),
        }]
    } else {
        Vec::new()
    };
    let config = ClusterConfig {
        stations: 10,
        seed: EXPERIMENT_SEED,
        policy,
        reservations,
        ..ClusterConfig::default()
    };
    let out = Run::new(config).specs(jobs()).horizon(SimDuration::from_days(6)).execute();
    let batch: Vec<_> = out.jobs.iter().filter(|j| j.spec.user == UserId(1)).collect();
    let done_in_window = batch
        .iter()
        .filter(|j| {
            j.state == JobState::Completed
                && j.completed_at.unwrap() <= SimTime::from_hours(60)
        })
        .count();
    let mean_wait: f64 = batch
        .iter()
        .map(|j| {
            j.wait_ratio().unwrap_or_else(|| {
                out.horizon.saturating_since(j.spec.arrival).as_secs_f64()
                    / j.spec.demand.as_secs_f64()
            })
        })
        .sum::<f64>()
        / batch.len() as f64;
    (out.policy_name.clone(), mean_wait, done_in_window, out.totals.reservation_placements)
}

fn main() {
    println!("== §5(3): a 3-machine, 12-hour reservation under a 60-job flood ==");
    let mut t = Table::new(
        vec![
            "Setup",
            "Batch wait ratio",
            "Batch done in window",
            "Reservation placements",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    let mut in_window = Vec::new();
    let setups = [
        (PolicyKind::UpDown(UpDownConfig::default()), false, "up-down, no reservation"),
        (PolicyKind::UpDown(UpDownConfig::default()), true, "up-down + reservation"),
        (PolicyKind::Fifo, false, "fifo, no reservation"),
        (PolicyKind::Fifo, true, "fifo + reservation"),
    ];
    // The four setups are independent simulations — one thread each.
    let results = par_map(&setups, |&(policy, reserve, _)| run(policy, reserve));
    for ((_, _, label), (_, wait, done, placements)) in setups.iter().zip(&results) {
        t.row(vec![
            (*label).into(),
            num(*wait, 2),
            format!("{done}/6"),
            placements.to_string(),
        ]);
        in_window.push(*done);
    }
    println!("{}", t.render());
    println!("the reservation guarantees the experiment window even under FIFO, where the");
    println!("flood otherwise starves the batch completely — §5(3)'s motivation.");
    assert!(
        in_window[1] == 6 && in_window[3] == 6,
        "reserved batches must finish inside the window"
    );
    assert!(
        in_window[3] > in_window[2],
        "under FIFO the reservation must rescue the batch"
    );
}
