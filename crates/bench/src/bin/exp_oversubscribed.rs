//! Fractional-capacity ablation — whole-machine vs half-CPU co-residency.
//!
//! The paper's stations are single-occupancy: one foreign job per idle
//! workstation, full speed. The fractional extension lets a station host
//! several residents at once, each granted a share of the capacity vector
//! and progressing at the granted CPU fraction. This experiment
//! oversubscribes a small fleet (a burst of long and short jobs worth far
//! more work than the fleet can hold) and compares the two regimes:
//!
//! * **whole** — every job demands the whole machine; Up-Down places one
//!   resident per station (the paper's model).
//! * **frac**  — every job demands half a CPU; the best-fit
//!   [`FracPolicy`](condor_core::policy::FracPolicy)
//!   packs two residents per station, each running at half speed.
//!
//! Halving the speed doubles a job's wall time, so fractional only pays
//! off when queueing dominates service — exactly the oversubscribed case:
//! short jobs stuck behind 8-hour residents wait far longer than the 2x
//! slowdown costs them.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_oversubscribed`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::Run;
use condor_core::config::{ClusterConfig, PolicyKind};
use condor_core::job::{JobId, JobSpec, UserId};
use condor_metrics::render_telemetry;
use condor_metrics::replicate::par_map;
use condor_metrics::summary::{mean_leverage, mean_wait_ratio};
use condor_metrics::table::{num, Align, Table};
use condor_model::diurnal::DiurnalProfile;
use condor_model::owner::OwnerConfig;
use condor_model::station::ResourceVec;
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

const STATIONS: usize = 8;

/// A burst worth ~100 h of work on an 8-station fleet: 10 day-long
/// simulation jobs plus 40 half-hour edit-compile jobs, all submitted in
/// the first hour. `demand` is the per-job resource request: whole-machine
/// for the baseline arm, half a CPU for the fractional arm.
fn burst(demand: ResourceVec) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for i in 0..10u64 {
        specs.push(JobSpec {
            id: JobId(i),
            user: UserId((i % 2) as u32),
            home: NodeId::new((i % 3) as u32),
            arrival: SimTime::from_secs(i * 5 * 60),
            demand: SimDuration::from_hours(8),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: demand,
            speedup: Default::default(),
        });
    }
    for i in 10..50u64 {
        specs.push(JobSpec {
            id: JobId(i),
            user: UserId((i % 3 + 2) as u32),
            home: NodeId::new(((i - 10) % 3) as u32),
            arrival: SimTime::from_secs((i - 10) * 90),
            demand: SimDuration::from_minutes(30),
            image_bytes: 200_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: demand,
            speedup: Default::default(),
        });
    }
    specs
}

fn config(policy: PolicyKind) -> ClusterConfig {
    ClusterConfig::builder()
        .stations(STATIONS)
        .seed(EXPERIMENT_SEED)
        .policy(policy)
        .owner(OwnerConfig {
            // Quiet owners: the comparison is about packing, not evictions.
            profile: DiurnalProfile::flat(0.02),
            ..OwnerConfig::default()
        })
        .record_trace(false)
        .build()
        .expect("oversubscribed config is valid")
}

fn main() {
    println!("== fractional capacity: whole-machine vs half-CPU packing (8 stations, 100 h burst) ==");
    let arms = [
        ("whole", ResourceVec::WHOLE, PolicyKind::default()),
        ("frac", ResourceVec::new(500, 400), PolicyKind::Frac),
    ];
    // The two arms are independent runs — one thread each.
    let runs = par_map(&arms, |(_, demand, policy)| {
        Run::new(config(*policy))
            .specs(burst(*demand))
            .horizon(SimDuration::from_days(3))
            .execute()
    });
    let mut t = Table::new(
        vec![
            "Arm",
            "Mean wait ratio",
            "Short-job wait ratio",
            "Mean leverage",
            "Done",
            "Makespan (h)",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    let mut wait_by_arm = Vec::new();
    for ((name, ..), out) in arms.iter().zip(&runs) {
        let wait = mean_wait_ratio(&out.jobs, |_| true).unwrap_or(f64::NAN);
        let short_wait = mean_wait_ratio(&out.jobs, |j| j.spec.id.0 >= 10).unwrap_or(f64::NAN);
        let lev = mean_leverage(&out.jobs, |_| true).unwrap_or(f64::NAN);
        let done = out
            .jobs
            .iter()
            .filter(|j| j.state == condor_core::job::JobState::Completed)
            .count();
        let makespan = out
            .completed_jobs()
            .filter_map(|j| j.completed_at)
            .max()
            .map(|at| at.since(SimTime::ZERO).as_hours_f64())
            .unwrap_or(f64::NAN);
        t.row(vec![
            name.to_string(),
            num(wait, 2),
            num(short_wait, 2),
            num(lev, 1),
            format!("{done}/{}", out.jobs.len()),
            num(makespan, 1),
        ]);
        wait_by_arm.push(wait);
    }
    println!("{}", t.render());
    for ((name, ..), out) in arms.iter().zip(&runs) {
        println!("-- telemetry [{name}] --");
        println!("{}", render_telemetry(&out.telemetry));
    }
    let (whole, frac) = (wait_by_arm[0], wait_by_arm[1]);
    println!("whole-machine mean wait ratio {whole:.2} vs fractional {frac:.2}");
    println!("oversubscription favours packing: half-speed residents beat queued whole machines.");
    assert!(
        frac < whole,
        "fractional packing must improve mean wait ratio under oversubscription \
         (frac {frac:.2} >= whole {whole:.2})"
    );
}
