//! §5 future-work item 2 — parallel programs (gang scheduling).
//!
//! "We are considering the implementation of the unix system calls fork(2),
//! exec(2), and pipe(2) to allow parallel programs to be executed on the
//! system. This facility would introduce many scheduling problems."
//!
//! A width-k gang needs k machines *simultaneously*; any owner's return
//! suspends the whole program, and evictions checkpoint all k members as a
//! coordinated cut. This experiment quantifies the predicted scheduling
//! problems: keeping total work constant, wider gangs wait longer for
//! machines, get interrupted more often (any of k owners), and burn more
//! transfer support per unit of work.
//!
//! Each width's seeds are simulated once, in parallel (one seed per
//! thread); all metrics and the completion check read the same outputs.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_gang`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::{Run, RunOutput};
use condor_core::config::ClusterConfig;
use condor_core::job::{JobId, JobSpec, UserId};
use condor_metrics::replicate::{par_map, MeanCi};
use condor_metrics::table::{num, Align, Table};
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

/// Total work is fixed at 96 machine-hours; width trades job count for
/// machines-per-job: 8×(1×12h), 4×(2×12h), 2×(4×12h), 1×(8×12h).
fn workload(width: u32) -> Vec<JobSpec> {
    let n_jobs = 8 / width as u64;
    (0..n_jobs)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(i),
            demand: SimDuration::from_hours(12),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

fn ci(outs: &[RunOutput], metric: impl Fn(&RunOutput) -> f64) -> MeanCi {
    MeanCi::from_values(&outs.iter().map(metric).collect::<Vec<_>>())
}

fn main() {
    println!("== §5(2): gang scheduling — 96 machine-hours at widths 1..8, 12 stations ==");
    let seeds: Vec<u64> = (0..6).map(|i| EXPERIMENT_SEED + i).collect();
    let mut t = Table::new(
        vec![
            "Width",
            "Jobs",
            "Turnaround (h)",
            "Owner interrupts",
            "Migrations",
            "Mean leverage",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    let mut turnarounds = Vec::new();
    for width in [1u32, 2, 4, 8] {
        let outs = par_map(&seeds, |&seed| {
            let config = ClusterConfig {
                stations: 12,
                seed,
                ..ClusterConfig::default()
            };
            Run::new(config)
                .specs(workload(width))
                .horizon(SimDuration::from_days(20))
                .execute()
        });
        let turnaround = ci(&outs, |o| {
            o.completed_jobs()
                .map(|j| j.turnaround().unwrap().as_hours_f64())
                .sum::<f64>()
                / o.completed_jobs().count().max(1) as f64
        });
        let interrupts = ci(&outs, |o| o.totals.preemptions_owner as f64);
        let migrations = ci(&outs, |o| o.totals.migrations as f64);
        let leverage = ci(&outs, |o| {
            condor_metrics::summary::mean_leverage(&o.jobs, |_| true).unwrap_or(0.0)
        });
        // Completion check across all seeds.
        for (&s, out) in seeds.iter().zip(&outs) {
            assert_eq!(
                out.completed_jobs().count() as u64,
                8 / u64::from(width),
                "width {width}, seed {s}: {:?}",
                out.totals
            );
        }
        t.row(vec![
            width.to_string(),
            (8 / width).to_string(),
            format!("{:.1} ± {:.1}", turnaround.mean, turnaround.half_width),
            format!("{:.1} ± {:.1}", interrupts.mean, interrupts.half_width),
            format!("{:.1} ± {:.1}", migrations.mean, migrations.half_width),
            num(leverage.mean, 0),
        ]);
        turnarounds.push(turnaround.mean);
    }
    println!("{}", t.render());
    println!("same total work, very different schedules: a width-8 program is hostage to");
    println!("eight owners at once — every return suspends all eight machines, and every");
    println!("eviction ships eight images. 'Many scheduling problems' indeed (paper §5).");
    assert!(
        turnarounds[3] > turnarounds[0],
        "wider gangs must turn around slower ({turnarounds:?})"
    );
}
