//! Figure 4 — average wait ratio vs service demand, all jobs vs light
//! users.
//!
//! Paper shape: light users barely wait at all (the Up-Down algorithm
//! shields them); the all-jobs curve is dominated by the heavy user, who
//! waits substantially.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig4`

use condor_bench::{is_light, run_scenario, EXPERIMENT_SEED};
use condor_metrics::buckets::wait_ratio_by_demand;
use condor_metrics::plot::points_block;
use condor_metrics::summary::mean_wait_ratio;
use condor_workload::scenarios::paper_month;

fn main() {
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    let all = wait_ratio_by_demand(&out.jobs, |_| true);
    let light = wait_ratio_by_demand(&out.jobs, is_light);

    println!("== Fig. 4: Average Wait Ratio vs Service Demand ==");
    println!(
        "{}",
        points_block(
            "all jobs: (demand bucket midpoint h, mean wait ratio)",
            &all.iter().map(|p| (p.mid(), p.mean)).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        points_block(
            "light users: (demand bucket midpoint h, mean wait ratio)",
            &light.iter().map(|p| (p.mid(), p.mean)).collect::<Vec<_>>()
        )
    );
    let mean_all = mean_wait_ratio(&out.jobs, |_| true).unwrap_or(0.0);
    let mean_light = mean_wait_ratio(&out.jobs, is_light).unwrap_or(0.0);
    let mean_heavy = mean_wait_ratio(&out.jobs, |j| !is_light(j)).unwrap_or(0.0);
    println!("mean wait ratio, all jobs    : {mean_all:.2}");
    println!("mean wait ratio, light users : {mean_light:.2}   (paper: 'in most cases light users did not wait at all')");
    println!("mean wait ratio, heavy user  : {mean_heavy:.2}   (paper: 'waited significantly more')");
    assert!(
        mean_light < mean_heavy,
        "Up-Down must favour light users (light {mean_light} vs heavy {mean_heavy})"
    );
    let zero_wait_light = out
        .jobs
        .iter()
        .filter(|j| is_light(j))
        .filter_map(|j| j.wait_ratio())
        .filter(|w| *w < 0.05)
        .count();
    let light_total = out.jobs.iter().filter(|j| is_light(j)).count();
    println!(
        "light jobs with (near-)zero wait: {zero_wait_light}/{light_total}"
    );
}
