//! §2.4 ablation — Up-Down vs baseline allocation policies.
//!
//! A heavy user floods the cluster while a light user submits a small
//! daily batch. The paper's claim: Up-Down gives light users steady access
//! regardless of the heavy load; naive policies let the head of the line
//! monopolise.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fairness`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::Run;
use condor_core::config::{ClusterConfig, PolicyKind};
use condor_core::job::UserId;
use condor_core::updown::UpDownConfig;
use condor_metrics::replicate::par_map;
use condor_metrics::summary::mean_wait_ratio;
use condor_metrics::table::{num, Align, Table};
use condor_workload::scenarios::fairness_duel;

fn main() {
    let policies = [
        PolicyKind::UpDown(UpDownConfig::default()),
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::Random,
    ];
    println!("== §2.4: policy fairness under a monopolising heavy user ==");
    let mut t = Table::new(
        vec![
            "Policy",
            "Light wait ratio",
            "Heavy wait ratio",
            "Light done",
            "Preemptions",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    let mut updown_light = f64::NAN;
    let mut worst_baseline_light = 0.0f64;
    // The four policy runs are independent — one thread each.
    let runs = par_map(&policies, |policy| {
        let scenario = fairness_duel(EXPERIMENT_SEED, 10, 6);
        let config = ClusterConfig {
            policy: *policy,
            ..scenario.config
        };
        Run::new(config).specs(scenario.jobs).horizon(scenario.horizon).execute()
    });
    for (policy, out) in policies.iter().zip(&runs) {
        let light_wait = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(1)).unwrap_or(f64::NAN);
        let heavy_wait = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(0)).unwrap_or(f64::NAN);
        let light_done = out
            .jobs
            .iter()
            .filter(|j| j.spec.user == UserId(1) && j.state == condor_core::job::JobState::Completed)
            .count();
        let light_total = out.jobs.iter().filter(|j| j.spec.user == UserId(1)).count();
        t.row(vec![
            out.policy_name.clone(),
            num(light_wait, 2),
            num(heavy_wait, 2),
            format!("{light_done}/{light_total}"),
            out.totals.preemptions_priority.to_string(),
        ]);
        match policy {
            PolicyKind::UpDown(_) => updown_light = light_wait,
            _ => worst_baseline_light = worst_baseline_light.max(light_wait),
        }
    }
    println!("{}", t.render());
    println!(
        "up-down light-user wait ratio {updown_light:.2} vs worst baseline {worst_baseline_light:.2}"
    );
    println!("paper: 'light users obtained remote resources regardless of the heavy user'");
    assert!(
        updown_light < worst_baseline_light,
        "Up-Down must beat the worst baseline for light users"
    );
}
