//! Figure 5 — utilization of remote resources over the month.
//!
//! Paper shape: local activity stays low (~25% average) while system
//! utilization (local + Condor) is far higher, often saturating the fleet.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig5`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_metrics::plot::{chart, Series};
use condor_workload::scenarios::paper_month;

fn main() {
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    let system: Vec<f64> = out
        .system_utilization_hourly()
        .iter()
        .map(|u| u * 100.0)
        .collect();
    let local: Vec<f64> = out
        .local_utilization_hourly()
        .iter()
        .map(|u| u * 100.0)
        .collect();

    println!("== Fig. 5: Utilization of Remote Resources (one month, % of 23 stations) ==");
    println!(
        "{}",
        chart(
            &[
                Series { label: "system (local + remote)", glyph: '*', values: &system },
                Series { label: "local only", glyph: '.', values: &local },
            ],
            100,
            16,
        )
    );
    let mean_sys = system.iter().sum::<f64>() / system.len() as f64;
    let mean_loc = local.iter().sum::<f64>() / local.len() as f64;
    let saturated = system.iter().filter(|&&u| u > 90.0).count();
    println!("mean local utilization : {mean_loc:.0}%  (paper: 25%)");
    println!("mean system utilization: {mean_sys:.0}%");
    println!(
        "hours with system > 90%: {saturated} — 'often all workstations were utilized'"
    );
    println!("\nday, mean system %, mean local %");
    for d in 0..(system.len() / 24) {
        let s = system[d * 24..(d + 1) * 24].iter().sum::<f64>() / 24.0;
        let l = local[d * 24..(d + 1) * 24].iter().sum::<f64>() / 24.0;
        println!("{d:3}, {s:6.1}, {l:6.1}");
    }
}
