//! Validation of the owner-activity model against the paper's premises.
//!
//! The scheduler's results rest on the companion study's findings (ref. \[1\]
//! of the paper): only ~30% of workstation capacity is used by owners,
//! available intervals are often long, and interval lengths are positively
//! autocorrelated. This experiment recomputes those statistics from a
//! simulated month's owner trace — validating the substituted stochastic
//! model, not just consuming it.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_availability`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::Run;
use condor_core::telemetry::SharedSink;
use condor_metrics::availability::AvailabilitySink;
use condor_metrics::table::{num, Align, Table};
use condor_workload::scenarios::paper_month;

fn main() {
    let mut scenario = paper_month(EXPERIMENT_SEED);
    // The profile streams out of the event feed as the month simulates —
    // no buffered trace, so the run holds no event storage at all.
    scenario.config.record_trace = false;
    let sink = SharedSink::new(AvailabilitySink::new(scenario.config.stations));
    let _out = Run::new(scenario.config)
        .specs(scenario.jobs)
        .horizon(scenario.horizon)
        .sink(Box::new(sink.clone()))
        .execute();
    let profile = sink.with(|s| s.profile());

    println!("== ref [1] premises: workstation availability profile (simulated month) ==");
    let mut t = Table::new(
        vec![
            "Station",
            "Available",
            "Idle intervals",
            "Mean interval (h)",
            "Lag-1 autocorr",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for s in &profile.stations {
        t.row(vec![
            s.station.to_string(),
            format!("{:.0}%", s.available_fraction * 100.0),
            s.intervals.to_string(),
            num(s.mean_interval_hours, 1),
            s.interval_autocorr
                .map(|a| num(a, 2))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "fleet availability      : {:.0}%   (paper: 'only 30% of their capacity was utilized')",
        profile.mean_available * 100.0
    );
    println!(
        "mean available interval : {:.1} h  (paper: 'available intervals were often very long')",
        profile.mean_interval_hours
    );
    println!(
        "mean lag-1 autocorr     : {:+.2}  (paper: long intervals follow long intervals)",
        profile.mean_autocorr
    );
    // Station heterogeneity: some machines are much better cycle sources.
    let best = profile
        .stations
        .iter()
        .map(|s| s.mean_interval_hours)
        .fold(0.0f64, f64::max);
    let worst = profile
        .stations
        .iter()
        .map(|s| s.mean_interval_hours)
        .fold(f64::INFINITY, f64::min);
    println!(
        "interval heterogeneity  : best station {best:.1} h vs worst {worst:.1} h — why history-aware placement works"
    );
    assert!(profile.mean_available > 0.6 && profile.mean_available < 0.9);
    assert!(profile.mean_autocorr > 0.0, "autocorrelation must be positive");
    assert!(best > 1.5 * worst, "stations must differ");
}
