//! Figure 9 — remote-execution leverage vs service demand.
//!
//! Paper shape: average leverage ≈ 1300 (a minute of local CPU buys ~22
//! hours of remote CPU); longer jobs have higher leverage; jobs under two
//! hours still average ≈ 600.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig9`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_metrics::buckets::leverage_by_demand;
use condor_metrics::plot::points_block;
use condor_metrics::summary::mean_leverage;
use condor_workload::scenarios::paper_month;

fn main() {
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    let pts = leverage_by_demand(&out.jobs, |_| true);

    println!("== Fig. 9: Remote Execution Leverage ==");
    println!(
        "{}",
        points_block(
            "(demand bucket midpoint h, mean leverage)",
            &pts.iter().map(|p| (p.mid(), p.mean)).collect::<Vec<_>>()
        )
    );
    for p in &pts {
        println!(
            "bucket {:>5.1}h: leverage {:>8.0} over {} jobs",
            p.mid(),
            p.mean,
            p.jobs
        );
    }
    let overall = mean_leverage(&out.jobs, |_| true).unwrap();
    let short = mean_leverage(&out.jobs, |j| j.spec.demand.as_hours_f64() < 2.0).unwrap();
    let long = mean_leverage(&out.jobs, |j| j.spec.demand.as_hours_f64() >= 6.0).unwrap();
    println!("\noverall mean leverage     : {overall:>6.0}   (paper ≈ 1300)");
    println!("jobs under 2 h            : {short:>6.0}   (paper ≈ 600)");
    println!("jobs of 6 h and more      : {long:>6.0}   (longer jobs leverage higher)");
    println!(
        "interpretation: 1 minute of local capacity buys {:.1} hours of remote capacity",
        overall / 60.0
    );
    assert!(long > short, "leverage must grow with demand ({long:.0} vs {short:.0})");
}
