//! Figure 3 — hourly queue length over the month, total vs light users.
//!
//! Paper shape: the heavy user keeps > 30 jobs in the system for long
//! periods; light users appear as small batches of ≈ 5; jobs in service
//! count as queued.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig3`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_core::job::UserId;
use condor_metrics::plot::{chart, Series};
use condor_sim::time::{SimDuration, SimTime};
use condor_workload::scenarios::paper_month;

fn main() {
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    let step = SimDuration::HOUR;
    let total = out.queue_total.resample_mean(SimTime::ZERO, out.horizon, step);
    // Light users: everyone but A (user 0).
    let mut light = vec![0.0; total.len()];
    for (user, series) in &out.queue_by_user {
        if *user == UserId(0) {
            continue;
        }
        for (i, v) in series
            .resample_mean(SimTime::ZERO, out.horizon, step)
            .into_iter()
            .enumerate()
        {
            light[i] += v;
        }
    }

    println!("== Fig. 3: Queue Length (hourly, one month) ==");
    println!(
        "{}",
        chart(
            &[
                Series { label: "total", glyph: '*', values: &total },
                Series { label: "light users", glyph: '.', values: &light },
            ],
            100,
            16,
        )
    );
    let peak_total = total.iter().cloned().fold(0.0, f64::max);
    let peak_light = light.iter().cloned().fold(0.0, f64::max);
    let above30 = total.iter().filter(|&&v| v > 30.0).count();
    println!("peak total queue  : {peak_total:.0} jobs (paper: >40 at peaks)");
    println!("peak light queue  : {peak_light:.0} jobs (paper: batches of ~5)");
    println!(
        "hours with total > 30 jobs: {above30} of {} — the heavy user's standing backlog",
        total.len()
    );
    println!("\nhour, total, light");
    for (i, (t, l)) in total.iter().zip(&light).enumerate().step_by(6) {
        println!("{i:5}, {t:6.1}, {l:6.1}");
    }
}
