//! Figure 7 — queue lengths for one week, total vs light users.
//!
//! Paper shape: sharp rises from batch arrivals; the heavy user's queue
//! often exceeds the number of machines; light users' contribution stays
//! small.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig7`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_core::job::UserId;
use condor_metrics::plot::{chart, Series};
use condor_sim::time::{SimDuration, SimTime};
use condor_workload::scenarios::one_week;

fn main() {
    let out = run_scenario(one_week(EXPERIMENT_SEED));
    let step = SimDuration::HOUR;
    let total = out.queue_total.resample_mean(SimTime::ZERO, out.horizon, step);
    let mut light = vec![0.0; total.len()];
    for (user, series) in &out.queue_by_user {
        if *user == UserId(0) {
            continue;
        }
        for (i, v) in series
            .resample_mean(SimTime::ZERO, out.horizon, step)
            .into_iter()
            .enumerate()
        {
            light[i] += v;
        }
    }

    println!("== Fig. 7: Queue Lengths for One Week ==");
    println!(
        "{}",
        chart(
            &[
                Series { label: "total", glyph: '*', values: &total },
                Series { label: "light users", glyph: '.', values: &light },
            ],
            168,
            16,
        )
    );
    let stations = out.stations as f64;
    let above_fleet = total.iter().filter(|&&v| v > stations).count();
    println!(
        "hours where the backlog exceeded the {} machines: {above_fleet} (paper: 'much of the time')",
        out.stations
    );
    // Batch arrivals show as jumps.
    let mut max_jump = 0.0f64;
    for w in total.windows(2) {
        max_jump = max_jump.max(w[1] - w[0]);
    }
    println!("largest hourly queue jump: {max_jump:.0} jobs — batch arrivals");
    println!("\nhour-of-week, total, light");
    for (h, (t, l)) in total.iter().zip(&light).enumerate() {
        if h % 4 == 0 {
            println!("{h:4}, {t:6.1}, {l:6.1}");
        }
    }
}
