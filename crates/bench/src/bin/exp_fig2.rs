//! Figure 2 — cumulative frequency distribution of job service demand.
//!
//! Paper shape: for each hour *i*, the fraction of jobs whose demand is
//! below *i*; mean ≈ 5 h, median < 3 h (short jobs are more frequent).
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig2`

use condor_bench::EXPERIMENT_SEED;
use condor_metrics::plot::{chart, points_block, Series};
use condor_sim::stats::Cdf;
use condor_workload::scenarios::paper_month;

fn main() {
    let scenario = paper_month(EXPERIMENT_SEED);
    let hours: Vec<f64> = scenario.jobs.iter().map(|j| j.demand.as_hours_f64()).collect();
    let mean = hours.iter().sum::<f64>() / hours.len() as f64;
    let cdf = Cdf::from_values(hours);
    let grid: Vec<f64> = (0..=24).map(f64::from).collect();
    let pts = cdf.evaluate_on(&grid);

    println!("== Fig. 2: Profile of Service Demand (CDF) ==");
    println!("{}", points_block("percentage of jobs with demand < i hours", &pts));
    let series: Vec<f64> = pts.iter().map(|(_, f)| f * 100.0).collect();
    println!(
        "{}",
        chart(
            &[Series { label: "% of jobs below demand (x = hours 0..24)", glyph: '*', values: &series }],
            64,
            14,
        )
    );
    println!("mean demand     : {mean:.1} h   (paper ≈ 5 h)");
    println!(
        "median demand   : {:.1} h   (paper < 3 h)",
        cdf.percentile(50.0).unwrap()
    );
    println!(
        "share below 3 h : {:.0}%  — short jobs dominate counts",
        cdf.fraction_below(3.0) * 100.0
    );
}
