//! §4 ablation — the placement throttle.
//!
//! "If several machines are available, and users have several background
//! jobs waiting for service, the performance of the local machine is
//! severely degraded if all jobs are placed at the same time. Our
//! implementation places a single job remotely every two minutes to
//! distribute over time the impact on local workstations and the network."
//!
//! This experiment sweeps the per-poll placement budget and measures the
//! burst impact: how long transfers queue on the shared medium and how
//! much local CPU the submitting machine burns per minute during the burst.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_throttle`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::Run;
use condor_core::config::ClusterConfig;
use condor_core::job::{JobId, JobSpec, UserId};
use condor_core::telemetry::{SharedSink, TraceSink};
use condor_core::trace::{TraceEvent, TraceKind};
use condor_metrics::replicate::par_map;
use condor_metrics::table::{num, Align, Table};
use condor_model::diurnal::DiurnalProfile;
use condor_model::owner::OwnerConfig;
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

/// Streams out just the placement instants — the only events this
/// experiment reads — so the runs need no buffered trace.
#[derive(Debug, Default)]
struct PlacementTimes(Vec<SimTime>);

impl TraceSink for PlacementTimes {
    fn record(&mut self, ev: &TraceEvent) {
        if matches!(ev.kind, TraceKind::PlacementStarted { .. }) {
            self.0.push(ev.at);
        }
    }
}

fn burst_jobs(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(3),
            image_bytes: 2_000_000, // big images make the burst visible
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

fn main() {
    println!("== §4: placement-throttle ablation (20-job burst, 2 MB images, 22 idle machines) ==");
    let mut t = Table::new(
        vec![
            "Placements/poll",
            "Burst window (min)",
            "Peak home CPU (s/min)",
            "Makespan (h)",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    let budgets = [1usize, 4, 20];
    // Independent day-long runs — one thread per placement budget.
    let runs = par_map(&budgets, |&budget| {
        let config = ClusterConfig::builder()
            .stations(23)
            .seed(EXPERIMENT_SEED)
            .placements_per_poll(budget)
            .owner(OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            })
            .record_trace(false)
            .build()
            .expect("throttle sweep config is valid");
        let placements = SharedSink::new(PlacementTimes::default());
        let out = Run::new(config)
            .specs(burst_jobs(20))
            .horizon(SimDuration::from_days(1))
            .sink(Box::new(placements.clone()))
            .execute();
        let starts = placements
            .try_into_inner()
            .expect("run finished; sole handle")
            .0;
        (out, starts)
    });
    for (&budget, (out, starts)) in budgets.iter().zip(&runs) {
        // Placement instants → burst window and per-minute local CPU.
        let window = starts
            .last()
            .map(|l| l.since(starts[0]).as_minutes_f64())
            .unwrap_or(0.0);
        // Transfer CPU is 5 s/MB × 2 MB = 10 s per placement; peak home
        // CPU per minute is placements-in-the-busiest-minute × 10 s.
        let mut per_minute = std::collections::HashMap::new();
        for s in starts {
            *per_minute.entry(s.as_millis() / 60_000).or_insert(0u32) += 1;
        }
        let peak = per_minute.values().copied().max().unwrap_or(0) as f64 * 10.0;
        let makespan = out
            .completed_jobs()
            .map(|j| j.completed_at.unwrap())
            .max()
            .map(|t| t.since(SimTime::from_hours(1)).as_hours_f64())
            .unwrap_or(f64::NAN);
        t.row(vec![
            budget.to_string(),
            num(window, 0),
            num(peak, 0),
            num(makespan, 1),
        ]);
    }
    println!("{}", t.render());
    println!("burst placement finishes the spread sooner but hammers the submitting machine:");
    println!("at 20/poll the home burns 100+ s of CPU in one minute (plus the network),");
    println!("which is exactly the degradation §4 describes; 1/poll smooths it to 10 s/min.");
}
