//! §1's guarantee under fire — station crashes and the checkpoint server.
//!
//! The paper promises that "the system guarantees that the job will
//! eventually complete" even when remote stations fail, and that "very
//! little, if any, work will be performed more than once". This experiment
//! sweeps station MTBF from none to brutal and measures completions, redone
//! work, and delay; a second table shows the §4 checkpoint-server idea
//! lifting the home-disk limit when disks are small.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_failures`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_core::cluster::Run;
use condor_core::config::{ClusterConfig, FailureConfig};
use condor_metrics::replicate::par_map;
use condor_metrics::summary::summarize;
use condor_metrics::table::{num, Align, Table};
use condor_model::station::StationProfile;
use condor_sim::time::SimDuration;
use condor_workload::scenarios::paper_month;

fn main() {
    println!("== §1 guarantee: completions under station failures (paper month) ==");
    let mut t = Table::new(
        vec![
            "MTBF / station",
            "Crashes",
            "Rollbacks",
            "Work redone (h)",
            "Done",
            "Mean wait ratio",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    let sweeps: Vec<(&str, Option<FailureConfig>)> = vec![
        ("never (paper)", None),
        (
            "1 week",
            Some(FailureConfig {
                mtbf: SimDuration::from_days(7),
                mttr: SimDuration::from_hours(2),
            }),
        ),
        (
            "1 day",
            Some(FailureConfig {
                mtbf: SimDuration::from_days(1),
                mttr: SimDuration::from_hours(2),
            }),
        ),
        (
            "8 hours",
            Some(FailureConfig {
                mtbf: SimDuration::from_hours(8),
                mttr: SimDuration::from_hours(1),
            }),
        ),
    ];
    // Each sweep point needs two month-long runs (observed + extended
    // horizon); all eight simulations run across parallel threads.
    let runs = par_map(&sweeps, |&(_, failures)| {
        let scenario = paper_month(EXPERIMENT_SEED);
        let config = ClusterConfig { failures, ..scenario.config };
        let out = Run::new(config.clone())
            .specs(scenario.jobs.clone())
            .horizon(scenario.horizon)
            .execute();
        // The guarantee is *eventual* completion: redone work can push a
        // late straggler past the 30-day observation window, but with a
        // little more time everything finishes.
        let extended = Run::new(config)
            .specs(scenario.jobs)
            .horizon(scenario.horizon + SimDuration::from_days(10))
            .execute();
        (out, extended)
    });
    for ((name, _), (out, extended)) in sweeps.iter().zip(&runs) {
        let s = summarize(out);
        let redone: f64 = out.jobs.iter().map(|j| j.work_lost.as_hours_f64()).sum();
        t.row(vec![
            (*name).into(),
            out.totals.station_failures.to_string(),
            out.totals.crash_rollbacks.to_string(),
            num(redone, 1),
            format!("{}/{}", s.jobs_completed, s.jobs_submitted),
            num(s.mean_wait_ratio, 2),
        ]);
        let done = extended.completed_jobs().count();
        let admitted = extended.jobs.iter().filter(|j| !j.rejected).count();
        assert_eq!(
            done, admitted,
            "the eventual-completion guarantee must hold at MTBF {name}"
        );
    }
    println!("{}", t.render());
    println!("every admitted job completes at every failure rate; crashes only redo the");
    println!("work since the last checkpoint (the §2.3 guarantee, priced in hours above).\n");

    println!("== §4 disk servers: tiny home disks with and without a checkpoint server ==");
    let mut t2 = Table::new(
        vec!["Home disk", "Ckpt server", "Rejected at submit", "Done"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    let disk_setups = [(4_000_000u64, false), (4_000_000, true), (100_000_000, false)];
    let disk_runs = par_map(&disk_setups, |&(disk, server)| {
        let scenario = paper_month(EXPERIMENT_SEED);
        let config = ClusterConfig {
            station: StationProfile::new(1.0, disk),
            checkpoint_server: server,
            ..scenario.config
        };
        Run::new(config).specs(scenario.jobs).horizon(scenario.horizon).execute()
    });
    for (&(disk, server), out) in disk_setups.iter().zip(&disk_runs) {
        let s = summarize(out);
        t2.row(vec![
            format!("{} MB", disk / 1_000_000),
            if server { "yes" } else { "no" }.into(),
            out.totals.submit_rejections.to_string(),
            format!("{}/{}", s.jobs_completed, 918),
        ]);
    }
    println!("{}", t2.render());
    println!("paper §4: 'space can be saved if disk servers ... store checkpoint files'");

    // Sanity: the default run is unchanged by the failure plumbing.
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    assert_eq!(out.totals.station_failures, 0);
}
