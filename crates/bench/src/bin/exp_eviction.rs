//! §4 ablation — eviction strategies.
//!
//! The 1988 implementation suspends a preempted job for a 5-minute grace
//! period, then checkpoints and moves it; the paper discusses switching to
//! *immediate kill + periodic checkpoints* to minimise owner interference
//! at the cost of redone work. This experiment quantifies the trade.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_eviction`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::Run;
use condor_core::config::{ClusterConfig, EvictionStrategy};
use condor_metrics::replicate::par_map;
use condor_metrics::table::{num, Align, Table};
use condor_sim::time::SimDuration;
use condor_workload::scenarios::paper_month;

fn main() {
    let strategies: Vec<(&str, EvictionStrategy)> = vec![
        (
            "grace 5 min (paper)",
            EvictionStrategy::GraceThenCheckpoint { grace: SimDuration::from_minutes(5) },
        ),
        (
            "grace 1 min",
            EvictionStrategy::GraceThenCheckpoint { grace: SimDuration::from_minutes(1) },
        ),
        (
            "kill + ckpt 30 min",
            EvictionStrategy::ImmediateKill { checkpoint_every: SimDuration::from_minutes(30) },
        ),
        (
            "kill + ckpt 2 h",
            EvictionStrategy::ImmediateKill { checkpoint_every: SimDuration::from_hours(2) },
        ),
    ];
    println!("== §4: eviction strategy trade-off (paper month workload) ==");
    let mut t = Table::new(
        vec![
            "Strategy",
            "Done",
            "Work lost (h)",
            "Resumes in place",
            "Migrations",
            "Periodic ckpts",
            "Interference (min)",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    let mut grace_lost = f64::NAN;
    let mut kill_lost = f64::NAN;
    // One month-long simulation per strategy — run them on parallel threads.
    let runs = par_map(&strategies, |&(_, eviction)| {
        let scenario = paper_month(EXPERIMENT_SEED);
        let config = ClusterConfig { eviction, ..scenario.config };
        Run::new(config).specs(scenario.jobs).horizon(scenario.horizon).execute()
    });
    for ((name, _), out) in strategies.iter().zip(&runs) {
        let name = *name;
        let lost_h: f64 = out.jobs.iter().map(|j| j.work_lost.as_hours_f64()).sum();
        t.row(vec![
            name.into(),
            out.completed_jobs().count().to_string(),
            num(lost_h, 1),
            out.totals.resumes_in_place.to_string(),
            out.totals.migrations.to_string(),
            out.totals.periodic_checkpoints.to_string(),
            num(out.totals.interference_ms as f64 / 60_000.0, 0),
        ]);
        if name.starts_with("grace 5") {
            grace_lost = lost_h;
        }
        if name == "kill + ckpt 30 min" {
            kill_lost = lost_h;
        }
    }
    println!("{}", t.render());
    println!("grace strategy loses {grace_lost:.1} h of work (paper: none — checkpoint on eviction)");
    println!("immediate kill loses {kill_lost:.1} h (paper: 'only work between the most recent checkpoint and termination')");
    assert_eq!(grace_lost, 0.0, "grace-then-checkpoint must never lose work");
    assert!(kill_lost > 0.0, "immediate kill must lose some work");
}
