//! Speculative replication and opportunistic checkpointing under fire.
//!
//! Condor's guarantee machinery (checkpointing, rollback) makes failures
//! survivable; the redundancy policy family tries to make them *cheap*.
//! This experiment races three policies — plain Up-Down, Up-Down plus
//! `k = 2` speculative replicas (cancel-on-first-finish), and the same
//! with the hazard-driven opportunistic checkpoint timer — across three
//! fault regimes: a calm cluster, a mixed chaos schedule, and repeated
//! coordinator outages. Every run streams through the [`AuditSink`], so
//! the numbers below are conservation-checked: each spawned replica is
//! matched by exactly one cancellation or one completion, and the wasted
//! work column is the audited sum of the cancelled copies' progress.
//!
//! The headline claim (asserted at the bottom): under coordinator
//! outages, replication buys back wait ratio — a replica on a surviving
//! idle station finishes the job even when the primary is evicted at a
//! moment the coordinator cannot re-place it.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_redundancy`
//! (`--quick` shrinks the month to the one-week close-up for CI).

use condor_bench::EXPERIMENT_SEED;
use condor_core::audit::AuditSink;
use condor_core::chaos::{ChaosConfig, ChaosEntry, ChaosGen, ChaosSchedule, Fault};
use condor_core::cluster::{Run, RunOutput};
use condor_core::config::PolicyKind;
use condor_core::redundancy::{CkptTiming, RedundancyConfig};
use condor_core::telemetry::SharedSink;
use condor_metrics::replicate::par_map;
use condor_metrics::summary::{summarize, RunSummary};
use condor_metrics::table::{num, Align, Table};
use condor_sim::time::{SimDuration, SimTime};
use condor_workload::scenarios::{one_week, paper_month, Scenario};

/// A 6-hour coordinator outage every 12 hours — the §4 "central machine
/// crashes" scenario, recurring. Placements stop inside each window;
/// owners keep returning; evicted jobs wait for recovery.
fn outage_schedule(horizon: SimDuration) -> ChaosSchedule {
    let mut entries = Vec::new();
    let mut at = SimTime::ZERO + SimDuration::from_hours(6);
    let end = SimTime::ZERO + horizon;
    while at < end {
        entries.push(ChaosEntry {
            at,
            fault: Fault::CoordinatorOutage { duration: SimDuration::from_hours(6) },
        });
        at += SimDuration::from_hours(12);
    }
    ChaosSchedule { entries }
}

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("up-down", PolicyKind::default()),
        (
            "redundant k=2",
            PolicyKind::Redundant(RedundancyConfig::default()),
        ),
        (
            "redundant k=2 + opp-ckpt",
            PolicyKind::Redundant(RedundancyConfig {
                checkpointing: CkptTiming::Opportunistic {
                    check_every: SimDuration::from_minutes(10),
                    hazard_threshold: 1.0,
                },
                ..RedundancyConfig::default()
            }),
        ),
    ]
}

struct Case {
    regime: &'static str,
    policy: &'static str,
    out: RunOutput,
    summary: RunSummary,
    violations: Vec<String>,
    audited: (u64, u64, u64),
}

fn run_case(
    scenario: Scenario,
    policy: PolicyKind,
    chaos: Option<ChaosSchedule>,
) -> (RunOutput, Vec<String>, (u64, u64, u64)) {
    let mut config = scenario.config;
    config.policy = policy;
    config.chaos = chaos.map(ChaosConfig::new);
    // Chaos perturbs the poll grid, so pin the audited cadence instead of
    // letting the sink infer it from the first (possibly stretched) gap.
    let audit = SharedSink::new(
        AuditSink::new().with_poll_interval(config.costs.coordinator_poll_interval),
    );
    let out = Run::new(config)
        .specs(scenario.jobs)
        .horizon(scenario.horizon)
        .sink(Box::new(audit.clone()))
        .execute();
    let violations = audit.with(|a| a.violations().iter().map(|v| v.to_string()).collect());
    let audited = audit.with(|a| a.replica_totals());
    (out, violations, audited)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scenario = |seed| if quick { one_week(seed) } else { paper_month(seed) };
    let horizon = scenario(EXPERIMENT_SEED).horizon;
    let faults = if quick { 14 } else { 60 };
    let regimes: Vec<(&'static str, Option<ChaosSchedule>)> = vec![
        ("calm", None),
        (
            "mixed faults",
            Some(ChaosSchedule::generate(
                EXPERIMENT_SEED,
                &ChaosGen { horizon, stations: 23, faults },
            )),
        ),
        ("coord outages", Some(outage_schedule(horizon))),
    ];

    let grid: Vec<(usize, usize)> = (0..regimes.len())
        .flat_map(|r| (0..policies().len()).map(move |p| (r, p)))
        .collect();
    let cases: Vec<Case> = par_map(&grid, |&(r, p)| {
        let (regime, chaos) = &regimes[r];
        let (policy, kind) = &policies()[p];
        let (out, violations, audited) =
            run_case(scenario(EXPERIMENT_SEED), *kind, chaos.clone());
        let summary = summarize(&out);
        Case { regime, policy, out, summary, violations, audited }
    });

    println!(
        "== redundancy policy family, {} ==",
        if quick { "one week (--quick)" } else { "paper month" }
    );
    let mut t = Table::new(
        vec![
            "Regime",
            "Policy",
            "Done",
            "Mean wait ratio",
            "Leverage",
            "Replicas",
            "Wins",
            "Wasted (h)",
        ],
        vec![
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for c in &cases {
        let s = &c.summary;
        let wins = s.replicas_spawned - s.replicas_cancelled;
        t.row(vec![
            c.regime.into(),
            c.policy.into(),
            format!("{}/{}", s.jobs_completed, s.jobs_submitted),
            num(s.mean_wait_ratio, 2),
            num(s.mean_leverage, 1),
            s.replicas_spawned.to_string(),
            wins.to_string(),
            num(s.wasted_replica_hours, 1),
        ]);
    }
    println!("{}", t.render());
    println!("a replica 'win' is a job whose speculative copy finished before the primary;");
    println!("'wasted' prices every cancelled copy's progress — the cost of the insurance.\n");

    // Every cell above is conservation-checked.
    for c in &cases {
        assert!(
            c.violations.is_empty(),
            "audit violations under {} / {}: {:?}",
            c.regime,
            c.policy,
            c.violations
        );
        let (spawned, cancelled, wasted_ms) = c.audited;
        assert_eq!(spawned, c.out.totals.replicas_spawned, "{}/{}", c.regime, c.policy);
        assert_eq!(cancelled, c.out.totals.replicas_cancelled, "{}/{}", c.regime, c.policy);
        assert_eq!(
            wasted_ms, c.out.totals.wasted_replica_work,
            "audited wasted work must match the simulator's own ledger ({}/{})",
            c.regime, c.policy
        );
        if matches!(
            (c.policy, c.regime),
            ("up-down", _)
        ) {
            assert_eq!(spawned, 0, "up-down must never replicate");
        }
    }

    // One seed is one anecdote; the verdict is a workload-seed sweep over
    // the outage regime, replication off vs on, paired per seed.
    let sweep_seeds = if quick { 8 } else { 12 };
    let sweep: Vec<(u64, bool)> = (0..sweep_seeds)
        .flat_map(|i| [(EXPERIMENT_SEED + i, false), (EXPERIMENT_SEED + i, true)])
        .collect();
    let sweep_waits: Vec<f64> = par_map(&sweep, |&(seed, redundant)| {
        let sc = scenario(seed);
        let policy = if redundant {
            PolicyKind::Redundant(RedundancyConfig::default())
        } else {
            PolicyKind::default()
        };
        let (out, violations, _) = run_case(sc, policy, Some(outage_schedule(horizon)));
        assert!(violations.is_empty(), "sweep seed {seed} violations: {violations:?}");
        summarize(&out).mean_wait_ratio
    });
    let (mut plain, mut redundant, mut seeds_won) = (0.0, 0.0, 0u64);
    for pair in sweep_waits.chunks(2) {
        plain += pair[0];
        redundant += pair[1];
        if pair[1] <= pair[0] {
            seeds_won += 1;
        }
    }
    plain /= sweep_seeds as f64;
    redundant /= sweep_seeds as f64;
    println!(
        "coordinator-outage sweep over {sweep_seeds} workload seeds: mean wait ratio \
         {} (up-down) -> {} (redundant k=2), better-or-equal on {seeds_won}/{sweep_seeds} seeds",
        num(plain, 3),
        num(redundant, 3)
    );
    assert!(
        redundant < plain,
        "replication must buy back mean wait ratio under coordinator outages \
         (up-down {plain:.3} vs redundant {redundant:.3})"
    );
    let spawned: u64 = cases.iter().map(|c| c.summary.replicas_spawned).sum();
    assert!(spawned > 0, "the redundant runs must actually replicate");
}
