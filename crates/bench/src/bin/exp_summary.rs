//! §3 headline numbers: available vs consumed capacity, utilizations,
//! leverage, and control-plane overheads.
//!
//! Paper values (23 stations, one month): 12438 station-hours available,
//! 4771 consumed (~200 CPU-days), availability ≈ 75%, local utilization
//! ≈ 25%, average leverage ≈ 1300, coordinator and local scheduler < 1%.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_summary`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_core::trace::TraceKind;
use condor_metrics::summary::summarize;
use condor_metrics::table::{num, Align, Table};
use condor_workload::scenarios::paper_month;

fn main() {
    let started = std::time::Instant::now();
    let mut scenario = paper_month(EXPERIMENT_SEED);
    // The whole report reads the streaming telemetry summary and the run
    // totals — no buffered trace needed, even over a simulated month.
    scenario.config.record_trace = false;
    let out = run_scenario(scenario);
    let s = summarize(&out);

    println!("== §3 summary: one month, {} stations ==", s.stations);
    let mut t = Table::new(
        vec!["Metric", "Paper", "Measured"],
        vec![Align::Left, Align::Right, Align::Right],
    );
    t.row(vec!["Jobs submitted".into(), "918".into(), s.jobs_submitted.to_string()]);
    t.row(vec!["Jobs completed".into(), "(most)".into(), s.jobs_completed.to_string()]);
    t.row(vec![
        "Available station-hours".into(),
        "12438".into(),
        num(s.available_hours, 0),
    ]);
    t.row(vec![
        "Consumed CPU-hours".into(),
        "4771".into(),
        num(s.consumed_hours, 0),
    ]);
    t.row(vec![
        "Consumed CPU-days".into(),
        "~200".into(),
        num(s.consumed_hours / 24.0, 0),
    ]);
    t.row(vec![
        "Availability".into(),
        "~75%".into(),
        format!("{:.0}%", s.availability * 100.0),
    ]);
    t.row(vec![
        "Local utilization".into(),
        "~25%".into(),
        format!("{:.0}%", s.local_utilization * 100.0),
    ]);
    t.row(vec![
        "System utilization".into(),
        "(fig 5)".into(),
        format!("{:.0}%", s.system_utilization * 100.0),
    ]);
    t.row(vec![
        "Mean leverage".into(),
        "~1300".into(),
        num(s.mean_leverage, 0),
    ]);
    t.row(vec![
        "Mean wait ratio".into(),
        "(fig 4)".into(),
        num(s.mean_wait_ratio, 2),
    ]);
    t.row(vec![
        "Mean moves per job".into(),
        "(fig 8)".into(),
        num(s.mean_checkpoints, 2),
    ]);
    t.row(vec!["Placements".into(), "-".into(), s.placements.to_string()]);
    t.row(vec!["Migrations".into(), "-".into(), s.migrations.to_string()]);
    println!("{}", t.render());

    println!(
        "control plane: {} polls, coordinator overhead (configured) {:.1}%, local scheduler {:.1}%",
        out.totals.polls,
        100.0 * condor_model::costs::CostModel::default().coordinator_overhead,
        100.0 * condor_model::costs::CostModel::default().local_scheduler_overhead,
    );
    println!(
        "owner interference from detection latency: {:.1} min total across {} owner preemptions",
        out.totals.interference_ms as f64 / 60_000.0,
        out.totals.preemptions_owner,
    );
    println!(
        "network: {} transfers, {:.1} MB moved",
        out.bus_transfers,
        out.bus_bytes_moved as f64 / 1e6
    );

    // Event-level counts from the O(1)-memory telemetry stream (the run
    // above recorded no trace at all).
    let tel = &out.telemetry;
    let count = |name: &str| {
        TraceKind::names()
            .iter()
            .position(|&n| n == name)
            .map(|i| tel.counts[i])
            .unwrap_or(0)
    };
    println!(
        "telemetry ({} events): {} suspensions, {} checkpoints, {} kills, {} in-place resumes",
        tel.events_total,
        count("job_suspended"),
        count("checkpoint_completed"),
        count("job_killed"),
        count("job_resumed_in_place"),
    );
    println!(
        "queue wait: mean {:.1} min, ~p99 {:.0} min; remote bursts: mean {:.1} min",
        tel.queue_wait_ms.mean() / 60_000.0,
        tel.queue_wait_ms.quantile(0.99).unwrap_or(0) as f64 / 60_000.0,
        tel.remote_burst_ms.mean() / 60_000.0,
    );
    eprintln!("[exp_summary ran in {:.2?}]", started.elapsed());
}
