//! §5 future-work item 1 — history-aware placement.
//!
//! The paper observes (via its companion study) that stations with long
//! available intervals tend to stay that way, and proposes choosing cycle
//! sources by availability history to cut preemptions of long jobs. Our
//! coordinator optionally ranks free machines by an EWMA of their past
//! idle-interval lengths; this experiment measures the effect.
//!
//! Replications run in parallel (one seed per thread, see
//! `condor_metrics::replicate`); each seed is simulated once and all four
//! metrics are read off the same outputs.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_history`

use condor_bench::EXPERIMENT_SEED;
use condor_core::cluster::{Run, RunOutput};
use condor_core::config::ClusterConfig;
use condor_metrics::replicate::{par_map, MeanCi};
use condor_metrics::table::{Align, Table};
use condor_workload::scenarios::paper_month;

const SEEDS: [u64; 8] = [EXPERIMENT_SEED, 7, 42, 1234, 9, 77, 4096, 31337];

/// One full replication set: every seed simulated once, in parallel,
/// results in seed order.
fn run_all(aware: bool) -> Vec<RunOutput> {
    par_map(&SEEDS, |&seed| {
        let scenario = paper_month(seed);
        let config = ClusterConfig {
            history_aware_placement: aware,
            ..scenario.config
        };
        Run::new(config).specs(scenario.jobs).horizon(scenario.horizon).execute()
    })
}

fn ci(outs: &[RunOutput], metric: impl Fn(&RunOutput) -> f64) -> MeanCi {
    MeanCi::from_values(&outs.iter().map(metric).collect::<Vec<_>>())
}

fn long_job_moves(out: &RunOutput) -> f64 {
    let long: Vec<&condor_core::job::Job> = out
        .jobs
        .iter()
        .filter(|j| j.spec.demand.as_hours_f64() >= 6.0)
        .collect();
    long.iter().map(|j| f64::from(j.checkpoints)).sum::<f64>() / long.len().max(1) as f64
}

fn main() {
    println!(
        "== §5(1): history-aware placement ablation (paper month, {} seeds, 95% CI) ==",
        SEEDS.len()
    );
    let mut t = Table::new(
        vec![
            "Placement",
            "Migrations",
            "Moves/long-job",
            "Mean leverage",
            "Mean wait ratio",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    let mut long_moves = Vec::new();
    for (name, aware) in [("id-order (paper)", false), ("history-aware", true)] {
        let outs = run_all(aware);
        let migs = ci(&outs, |o| o.totals.migrations as f64);
        let moves = ci(&outs, long_job_moves);
        let lev = ci(&outs, |o| {
            condor_metrics::summary::mean_leverage(&o.jobs, |_| true).unwrap_or(0.0)
        });
        let wait = ci(&outs, |o| {
            condor_metrics::summary::mean_wait_ratio(&o.jobs, |_| true).unwrap_or(0.0)
        });
        t.row(vec![
            name.into(),
            format!("{:.0} ± {:.0}", migs.mean, migs.half_width),
            moves.to_string(),
            format!("{:.0} ± {:.0}", lev.mean, lev.half_width),
            wait.to_string(),
        ]);
        long_moves.push(moves);
    }
    println!("{}", t.render());
    println!(
        "long-job moves: {} (id-order) vs {} (history-aware){}",
        long_moves[0],
        long_moves[1],
        if long_moves[1].significantly_below(&long_moves[0]) {
            " — significant at 95%"
        } else {
            ""
        }
    );
    println!("paper §5: choosing sources by interval history should reduce preemptions of long jobs");
    assert!(
        long_moves[1].mean < long_moves[0].mean,
        "history-aware placement must reduce long-job moves on average"
    );
}
