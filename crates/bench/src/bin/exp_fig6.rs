//! Figure 6 — utilization close-up over one working week.
//!
//! Paper shape: local activity peaks in weekday afternoons (~50%) and
//! drops to ~20% in evenings and nights; the whole fleet is saturated by
//! Condor for long stretches.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig6`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_metrics::plot::{chart, Series};
use condor_workload::scenarios::one_week;

fn main() {
    let out = run_scenario(one_week(EXPERIMENT_SEED));
    let system: Vec<f64> = out
        .system_utilization_hourly()
        .iter()
        .map(|u| u * 100.0)
        .collect();
    let local: Vec<f64> = out
        .local_utilization_hourly()
        .iter()
        .map(|u| u * 100.0)
        .collect();

    println!("== Fig. 6: Utilization for One Week (Mon..Sun, % of 23 stations) ==");
    println!(
        "{}",
        chart(
            &[
                Series { label: "system", glyph: '*', values: &system },
                Series { label: "local", glyph: '.', values: &local },
            ],
            // One column per hour of the week.
            168,
            16,
        )
    );
    // Day/night local split on weekdays.
    let mut afternoon = Vec::new();
    let mut night = Vec::new();
    for (h, &l) in local.iter().enumerate() {
        let day = h / 24;
        let hour = h % 24;
        if day < 5 {
            if (12..=16).contains(&hour) {
                afternoon.push(l);
            } else if !(8..=21).contains(&hour) {
                night.push(l);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "weekday afternoon local utilization: {:.0}%  (paper: ~50% short peaks)",
        mean(&afternoon)
    );
    println!(
        "weekday night/evening local utilization: {:.0}%  (paper: ~20%)",
        mean(&night)
    );
    println!("\nhour-of-week, system %, local %");
    for (h, (s, l)) in system.iter().zip(&local).enumerate() {
        if h % 4 == 0 {
            println!("{h:4}, {s:6.1}, {l:6.1}");
        }
    }
}
