//! Table 1 — profile of user service requests.
//!
//! Paper rows (jobs, % jobs, mean demand h, total h, % demand):
//! A 690/75/6.2/4278/90 · B 138/15/2.5/345/7 · C 39/4/2.6/101/2 ·
//! D 40/4/0.7/28/0.6 · E 11/1/1.7/19/0.4 · Total 918/100/5.2/4771/100.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_table1`

use condor_bench::EXPERIMENT_SEED;
use condor_metrics::table::{num, Align, Table};
use condor_workload::scenarios::paper_month;
use condor_workload::trace::table1_rows;

fn main() {
    let scenario = paper_month(EXPERIMENT_SEED);
    let rows = table1_rows(&scenario.jobs);

    println!("== Table 1: Profile of User Service Requests ==");
    let mut t = Table::new(
        vec![
            "User",
            "Number of Jobs",
            "% of Total Jobs",
            "Avg Demand/Job (h)",
            "Total Demand (h)",
            "% of Total Demand",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    let mut total_jobs = 0usize;
    let mut total_demand = 0.0f64;
    for r in &rows {
        t.row(vec![
            r.user.to_string(),
            r.jobs.to_string(),
            num(r.pct_jobs, 0),
            num(r.mean_demand_hours, 1),
            num(r.total_demand_hours, 0),
            num(r.pct_demand, 1),
        ]);
        total_jobs += r.jobs;
        total_demand += r.total_demand_hours;
    }
    t.rule();
    t.row(vec![
        "Total".into(),
        total_jobs.to_string(),
        "100".into(),
        num(total_demand / total_jobs as f64, 1),
        num(total_demand, 0),
        "100".into(),
    ]);
    println!("{}", t.render());
    println!(
        "paper: A 690/6.2h, B 138/2.5h, C 39/2.6h, D 40/0.7h, E 11/1.7h; total 918 jobs, 4771 h"
    );
}
