//! Figure 8 — rate of checkpointing vs service demand.
//!
//! Paper shape: moves per hour are relatively steady across demands except
//! for short jobs, which move more per hour; long jobs settle onto
//! stations with long available intervals and move less.
//!
//! Run with: `cargo run --release -p condor-bench --bin exp_fig8`

use condor_bench::{run_scenario, EXPERIMENT_SEED};
use condor_metrics::buckets::checkpoint_rate_by_demand;
use condor_metrics::plot::points_block;
use condor_workload::scenarios::paper_month;

fn main() {
    let out = run_scenario(paper_month(EXPERIMENT_SEED));
    let pts = checkpoint_rate_by_demand(&out.jobs, |_| true);

    println!("== Fig. 8: Rate of Checkpointing (moves per demand-hour) ==");
    println!(
        "{}",
        points_block(
            "(demand bucket midpoint h, checkpoints per hour, jobs in bucket)",
            &pts.iter().map(|p| (p.mid(), p.mean)).collect::<Vec<_>>()
        )
    );
    for p in &pts {
        println!(
            "bucket {:>5.1}h: {:>6.3} moves/h over {} jobs",
            p.mid(),
            p.mean,
            p.jobs
        );
    }
    // Shape check: short jobs move more per hour than long ones.
    let short: Vec<&_> = pts.iter().filter(|p| p.mid() < 2.0).collect();
    let long: Vec<&_> = pts.iter().filter(|p| p.mid() >= 6.0).collect();
    let mean = |v: &[&condor_metrics::buckets::BucketPoint]| {
        v.iter().map(|p| p.mean).sum::<f64>() / v.len().max(1) as f64
    };
    let (s, l) = (mean(&short), mean(&long));
    println!("\nshort jobs (<2 h): {s:.2} moves/h;  long jobs (≥6 h): {l:.2} moves/h");
    println!("paper: short jobs checkpoint at a higher hourly rate; long jobs settle down");
    assert!(
        s > l,
        "short jobs must move more per hour than long jobs ({s:.2} vs {l:.2})"
    );
    // Context: per-move cost.
    let mean_image = out.jobs.iter().map(|j| j.spec.image_bytes as f64).sum::<f64>()
        / out.jobs.len() as f64;
    println!(
        "mean image {:.2} MB → {:.1} s of local CPU per move at 5 s/MB (paper: ~2.5 s)",
        mean_image / 1e6,
        5.0 * mean_image / 1e6
    );
}
