//! # condor-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! Criterion micro-benchmarks in `benches/`. This library holds the shared
//! plumbing: running the standard scenarios and classifying users.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `exp_table1` | Table 1 — profile of user service requests |
//! | `exp_fig2` | Fig. 2 — CDF of service demand |
//! | `exp_fig3` | Fig. 3 — hourly queue length over the month |
//! | `exp_fig4` | Fig. 4 — average wait ratio vs demand |
//! | `exp_fig5` | Fig. 5 — month-long utilization |
//! | `exp_fig6` | Fig. 6 — one-week utilization |
//! | `exp_fig7` | Fig. 7 — one-week queue lengths |
//! | `exp_fig8` | Fig. 8 — checkpoint rate vs demand |
//! | `exp_fig9` | Fig. 9 — leverage vs demand |
//! | `exp_summary` | §3 headline numbers |
//! | `exp_fairness` | §2.4 — Up-Down vs baseline policies |
//! | `exp_eviction` | §4 — grace-then-checkpoint vs immediate kill |
//! | `exp_throttle` | §4 — the one-placement-per-poll throttle |
//! | `exp_failures` | §1 — crashes, rollback, and the checkpoint server |
//! | `exp_history` | §5(1) — history-aware placement ablation |
//! | `exp_gang` | §5(2) — gang-scheduled parallel programs |
//! | `exp_reservation` | §5(3) — advance reservations |
//! | `exp_hetero` | §5(4) — mixed VAX/SUN fleets |
//! | `exp_availability` | ref. \[1\] — owner-model validation |

#![warn(missing_docs)]

use condor_core::cluster::{Run, RunOutput};
use condor_core::job::{Job, UserId};
use condor_workload::scenarios::Scenario;

/// The default seed used by every experiment binary, so printed numbers
/// are reproducible across runs and documented in EXPERIMENTS.md.
pub const EXPERIMENT_SEED: u64 = 1988;

/// Runs a scenario to completion and returns its output.
pub fn run_scenario(s: Scenario) -> RunOutput {
    Run::new(s.config).specs(s.jobs).horizon(s.horizon).execute()
}

/// The paper's user A is index 0 in every scenario; "light users" are all
/// others. (The generic classifier in `condor_metrics::summary` agrees on
/// the paper workload; this fixed rule keeps figure legends stable.)
pub fn is_light(job: &Job) -> bool {
    job.spec.user != UserId(0)
}

/// Pretty duration for log lines.
pub fn hours(h: f64) -> String {
    format!("{h:.1} h")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use condor_core::job::{JobId, JobSpec};
    use condor_net::NodeId;
    use condor_sim::time::{SimDuration, SimTime};

    #[test]
    fn is_light_splits_users() {
        let mk = |u: u32| {
            Job::new(JobSpec {
                id: JobId(0),
                user: UserId(u),
                home: NodeId::new(0),
                arrival: SimTime::ZERO,
                demand: SimDuration::HOUR,
                image_bytes: 1,
                syscalls_per_cpu_sec: 0.0,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: Default::default(),
                speedup: Default::default(),
            })
        };
        assert!(!is_light(&mk(0)));
        assert!(is_light(&mk(1)));
    }

    #[test]
    fn hours_formats() {
        assert_eq!(hours(4771.04), "4771.0 h");
    }
}
