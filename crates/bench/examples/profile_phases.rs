//! Quick wall-clock attribution of the cluster step path. Not a benchmark —
//! a sanity probe for where a 7-day run's time goes.

use std::time::Instant;

use condor_core::cluster::Run;
use condor_core::config::ClusterConfig;
use condor_core::job::{JobId, JobSpec, UserId};
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

fn jobs(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 3) as u32),
            home: NodeId::new((i % 5) as u32),
            arrival: SimTime::from_secs(i * 13 * 60),
            demand: SimDuration::from_hours(1 + i % 4),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

fn time(label: &str, mut f: impl FnMut() -> u64) {
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    let mut events = 0u64;
    while start.elapsed().as_millis() < 400 {
        events = f();
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!(
        "{label:36} {per:8.3} ms/iter  {events:7} events  {:9.0} ev/s",
        events as f64 / (per / 1e3)
    );
}

fn main() {
    let base = || {
        ClusterConfig::builder()
            .stations(23)
            .record_trace(false)
            .build()
            .unwrap()
    };
    time("baseline 7d 40 jobs", || {
        Run::new(base()).specs(jobs(40)).horizon(SimDuration::from_days(7)).execute().events_dispatched
    });
    time("no jobs (polls+flips only)", || {
        Run::new(base()).horizon(SimDuration::from_days(7)).execute().events_dispatched
    });
    let mut cfg = base();
    cfg.costs.coordinator_poll_interval = SimDuration::from_days(365);
    time("no polls (flips only, no jobs)", || {
        let mut c = cfg.clone();
        c.costs.coordinator_poll_interval = SimDuration::from_days(365);
        Run::new(c).horizon(SimDuration::from_days(7)).execute().events_dispatched
    });
    let mut cfg200 = base();
    cfg200.stations = 200;
    time("200 stations, no jobs", || {
        Run::new(cfg200.clone()).horizon(SimDuration::from_days(7)).execute().events_dispatched
    });
}
