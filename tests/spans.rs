//! Acceptance + property tests for lifecycle spans and online auditing.
//!
//! The ISSUE's bar:
//! * the online [`SpanSink`] must agree exactly with spans rebuilt from a
//!   JSONL round-tripped copy of the same trace (property, across seeds);
//! * every job's per-phase totals must sum to its wall clock;
//! * the [`AuditSink`] must report **zero** violations on seeded
//!   paper-month and stormy runs under every allocation policy.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::core::audit::AuditSink;
use condor::core::config::FailureConfig;
use condor::core::spans::{SpanLog, SpanSink};
use condor::metrics::export::{events_from_jsonl, events_to_jsonl};
use condor::prelude::*;
use condor_model::diurnal::DiurnalProfile;
use condor_model::owner::OwnerConfig;
use proptest::prelude::*;

/// Runs a scenario with both observability sinks attached, returning the
/// run output, the online span log, and the audit verdict.
fn observed_run(
    config: ClusterConfig,
    jobs: Vec<JobSpec>,
    horizon: SimDuration,
) -> (RunOutput, SpanLog, Vec<String>) {
    let spans = SharedSink::new(SpanSink::new());
    let audit = SharedSink::new(AuditSink::new());
    let out = run_cluster_with_sinks(
        config,
        jobs,
        horizon,
        vec![Box::new(spans.clone()), Box::new(audit.clone())],
    );
    let log = spans.with(|s| s.log().clone());
    let violations = audit.with(|a| {
        a.violations()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    });
    (out, log, violations)
}

/// Frequent owner churn plus stochastic crashes: the trace exercises
/// suspensions, checkpoint evictions, and rollback paths heavily.
fn stormy_config(seed: u64, policy: PolicyKind) -> ClusterConfig {
    ClusterConfig {
        stations: 8,
        seed,
        policy,
        owner: OwnerConfig {
            profile: DiurnalProfile::flat(0.5),
            mean_active_period: SimDuration::from_minutes(8),
            ..OwnerConfig::default()
        },
        failures: Some(FailureConfig {
            mtbf: SimDuration::from_days(4),
            mttr: SimDuration::from_hours(2),
        }),
        ..ClusterConfig::default()
    }
}

fn stormy_jobs(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 4) as u32),
            home: NodeId::new((i % 8) as u32),
            arrival: SimTime::from_secs(i * 37 * 60),
            demand: SimDuration::from_hours(1 + i % 5),
            image_bytes: 200_000 + i * 10_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

/// Every policy, stormy weather: the auditor stays silent and every job's
/// phase totals tile its wall clock exactly.
#[test]
fn audit_is_clean_and_spans_are_gapless_under_every_policy() {
    let policies = [
        PolicyKind::UpDown(UpDownConfig::default()),
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::Random,
    ];
    for policy in policies {
        let name = format!("{policy:?}");
        let (out, log, violations) = observed_run(
            stormy_config(99, policy),
            stormy_jobs(40),
            SimDuration::from_days(7),
        );
        assert!(
            violations.is_empty(),
            "[{name}] audit violations: {violations:#?}"
        );
        assert!(!log.jobs.is_empty(), "[{name}] no spans folded");
        for (job, js) in &log.jobs {
            let wall = js.wall(log.finished_at);
            let total = js
                .phase_totals()
                .iter()
                .fold(SimDuration::ZERO, |acc, d| acc + *d);
            assert_eq!(total, wall, "[{name}] phase totals != wall for {job:?}");
            // Spans tile [arrival, completion-or-horizon] without gaps.
            let mut cursor = js.arrived;
            for s in &js.spans {
                assert_eq!(s.from, cursor, "[{name}] span gap for {job:?}");
                cursor = s.until;
            }
        }
        // Station occupancies never overlap.
        for (station, occ) in &log.stations {
            for w in occ.windows(2) {
                assert!(
                    w[0].until <= w[1].from,
                    "[{name}] {station} hosts two jobs at once: {w:?}"
                );
            }
        }
        drop(out);
    }
}

/// The paper month itself (the repo's flagship scenario) audits clean.
#[test]
fn paper_month_audits_clean() {
    let scenario = paper_month(42);
    let (out, log, violations) = observed_run(scenario.config, scenario.jobs, scenario.horizon);
    assert!(violations.is_empty(), "audit violations: {violations:#?}");
    assert!(out.totals.placements > 0);
    // Aggregate breakdown is self-consistent: per-phase time sums to the
    // total wall clock across all jobs.
    let b = log.breakdown();
    let agg = b
        .aggregate
        .iter()
        .fold(SimDuration::ZERO, |acc, d| acc + *d);
    assert_eq!(agg, b.total_wall);
    assert!(b.critical.is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The online fold and a fold of the JSONL round-tripped trace agree
    /// exactly — spans carry no information the portable trace lacks.
    #[test]
    fn online_spans_match_jsonl_replay(seed in 0u64..500) {
        let (out, online, _) = observed_run(
            stormy_config(seed, PolicyKind::UpDown(UpDownConfig::default())),
            stormy_jobs(16),
            SimDuration::from_days(3),
        );
        let text = events_to_jsonl(out.trace.events());
        let replayed = events_from_jsonl(&text).expect("trace round-trips");
        prop_assert_eq!(replayed.len(), out.trace.len());
        let refold = SpanSink::fold(&replayed, out.horizon);
        prop_assert_eq!(&refold, &online);
    }
}
