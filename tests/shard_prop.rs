//! Property guard for the conservative-lookahead invariant.
//!
//! The sharded runner is safe because a message created at a barrier `T`
//! is delivered at `T + latency`, and the synchronisation window never
//! exceeds the minimum inter-pool latency — so no shard can receive an
//! event from another shard's not-yet-simulated past. The property: for
//! *any* window that respects the lookahead bound, the merged trace is a
//! pure function of the inputs — worker thread count never reorders it —
//! and a one-pool topology reproduces the classic serial runner bit for
//! bit.
//!
//! The vendored proptest stub does not shrink, so the minimal interesting
//! configuration (two pools, window exactly equal to the latency) is also
//! pinned as an explicit deterministic test.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::prelude::*;
use proptest::prelude::*;

fn workload(n: u64, stations: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 3) as u32),
            home: NodeId::new((i % stations) as u32),
            arrival: SimTime::from_secs(900 * i),
            demand: SimDuration::from_hours(3),
            image_bytes: 300_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

fn sharded_trace(
    pools: usize,
    window_secs: u64,
    latency_secs: u64,
    threads: usize,
    seed: u64,
) -> Vec<TraceEvent> {
    sharded_policy_trace(pools, window_secs, latency_secs, threads, seed, PolicyKind::default())
}

fn sharded_policy_trace(
    pools: usize,
    window_secs: u64,
    latency_secs: u64,
    threads: usize,
    seed: u64,
    policy: PolicyKind,
) -> Vec<TraceEvent> {
    let config = ClusterConfig {
        stations: 8,
        seed,
        policy,
        topology: Some(PoolTopology {
            pools,
            links: PoolLinks::uniform(pools, SimDuration::from_secs(latency_secs)),
            window: Some(SimDuration::from_secs(window_secs)),
            max_forwards_per_window: 2,
        }),
        ..ClusterConfig::default()
    };
    let out =
        run_cluster_with_threads(config, workload(12, 8), SimDuration::from_days(2), threads);
    out.trace.events().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any pool count and any window within the lookahead bound, the
    /// parallel run's merged trace equals the single-threaded run's — the
    /// conservative window means thread scheduling can never reorder it.
    #[test]
    fn windows_within_the_lookahead_are_thread_invariant(
        pools in 1usize..=4,
        latency_secs in 60u64..600,
        divisor in 1u64..=4,
        seed in 0u64..1_000,
    ) {
        let window_secs = (latency_secs / divisor).max(1);
        let serial = sharded_trace(pools, window_secs, latency_secs, 1, seed);
        let parallel = sharded_trace(pools, window_secs, latency_secs, 4, seed);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(a, b);
        }
    }

    /// A one-pool topology must not merely be self-consistent — it must
    /// reproduce the classic monolithic runner exactly, windowed
    /// `run_until` calls and all.
    #[test]
    fn one_pool_topology_equals_the_serial_runner(
        latency_secs in 60u64..600,
        seed in 0u64..1_000,
    ) {
        let legacy = {
            let config = ClusterConfig { stations: 8, seed, ..ClusterConfig::default() };
            run_cluster(config, workload(12, 8), SimDuration::from_days(2))
        };
        let sharded = sharded_trace(1, latency_secs, latency_secs, 4, seed);
        prop_assert_eq!(legacy.trace.len(), sharded.len());
        for (a, b) in legacy.trace.events().iter().zip(&sharded) {
            prop_assert_eq!(a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The replica lifecycle (spawn, arrival, cancel-on-first-finish,
    /// demand reclaim) rides the same event grid as everything else, so an
    /// armed redundancy policy must stay thread-invariant through the
    /// sharded runner: worker count changes how many shards advance
    /// concurrently, never what any shard computes.
    #[test]
    fn redundancy_armed_shards_are_thread_invariant(
        pools in 1usize..=3,
        latency_secs in 60u64..600,
        seed in 0u64..1_000,
    ) {
        let policy = PolicyKind::Redundant(RedundancyConfig::default());
        let serial =
            sharded_policy_trace(pools, latency_secs, latency_secs, 1, seed, policy);
        let parallel = sharded_policy_trace(pools, latency_secs, latency_secs, 4, seed, policy);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(a, b);
        }
    }
}

/// The minimal interesting configuration, pinned deterministically: two
/// pools, window exactly at the lookahead bound (the tightest legal
/// window), forwarding enabled. This is what a shrinker would converge to
/// if the conservative invariant ever broke.
#[test]
fn two_pools_at_the_exact_lookahead_bound_stay_deterministic() {
    let mut reference: Option<Vec<TraceEvent>> = None;
    for threads in [1usize, 2] {
        let trace = sharded_trace(2, 300, 300, threads, 1988);
        assert!(!trace.is_empty());
        match &reference {
            None => reference = Some(trace),
            Some(r) => assert_eq!(&trace, r, "two-pool trace diverged at {threads} threads"),
        }
    }
}
