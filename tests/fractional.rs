//! Acceptance + property tests for fractional capacity scheduling.
//!
//! * **Exact slowdown**: two half-CPU jobs packed on one station must each
//!   finish in exactly twice their solo whole-machine burst time — grants
//!   are fixed shares, so progress scales deterministically with the
//!   granted CPU fraction.
//! * **Capacity conservation** (property): replaying any seeded fractional
//!   run through [`AuditSink::with_capacities`] must show per-dimension
//!   granted capacity never exceeding the station's capacity vector at any
//!   event time.

use condor::core::audit::AuditSink;
use condor::core::telemetry::TraceSink;
use condor::core::trace::TraceKind;
use condor::prelude::*;
use condor_model::diurnal::DiurnalProfile;
use condor_model::owner::OwnerConfig;
use condor_model::station::ResourceVec;
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Owners that never reclaim their machines: flat zero activity (clamped
/// to a floor) with decade-long dwells, plus zero heterogeneity so every
/// station runs at the reference speed.
fn quiet_config(stations: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .stations(stations)
        .seed(7)
        .policy(PolicyKind::Frac)
        .owner(OwnerConfig {
            profile: DiurnalProfile::flat(0.0),
            mean_active_period: SimDuration::from_days(3_650),
            ..OwnerConfig::default()
        })
        .owner_heterogeneity(0.0)
        .build()
        .expect("quiet config is valid")
}

fn job(id: u64, resources: ResourceVec) -> JobSpec {
    JobSpec {
        id: JobId(id),
        user: UserId(0),
        home: NodeId::new(0),
        arrival: SimTime::ZERO,
        demand: SimDuration::from_hours(1),
        image_bytes: 1_000,
        syscalls_per_cpu_sec: 0.0,
        binaries: Default::default(),
        depends_on: Vec::new(),
        width: 1,
        speedup: Default::default(),
        resources,
    }
}

/// JobStarted → JobCompleted wall time per job, from the trace.
fn bursts(out: &RunOutput) -> std::collections::HashMap<JobId, SimDuration> {
    let mut started = std::collections::HashMap::new();
    let mut burst = std::collections::HashMap::new();
    for ev in out.trace.events() {
        match ev.kind {
            TraceKind::JobStarted { job, .. } => {
                started.insert(job, ev.at);
            }
            TraceKind::JobCompleted { job, .. } => {
                burst.insert(job, ev.at.since(started[&job]));
            }
            _ => {}
        }
    }
    burst
}

/// A half-CPU pair sharing one station runs each job at exactly half
/// speed: the 1-hour demand takes exactly 2 hours of wall clock, twice
/// the solo whole-machine burst.
#[test]
fn half_cpu_pair_finishes_in_exactly_twice_solo_burst() {
    // Solo baseline: one whole-machine job, burst == demand exactly.
    let solo = Run::new(quiet_config(1))
        .specs(vec![job(0, ResourceVec::WHOLE)])
        .horizon(SimDuration::from_days(1))
        .execute();
    let solo_burst = bursts(&solo)[&JobId(0)];
    assert_eq!(solo_burst, SimDuration::from_hours(1), "solo burst is the demand");

    // The pair: two half-CPU jobs on the single station.
    let out = Run::new(quiet_config(1))
        .specs(vec![job(0, ResourceVec::share(500)), job(1, ResourceVec::share(500))])
        .horizon(SimDuration::from_days(1))
        .execute();
    assert!(
        out.jobs.iter().all(|j| j.state == JobState::Completed),
        "both residents complete"
    );
    let b = bursts(&out);
    for id in [JobId(0), JobId(1)] {
        assert_eq!(
            b[&id],
            SimDuration::from_hours(2),
            "half-CPU burst is exactly 2x the solo burst (job {id:?})"
        );
    }
    // And they genuinely co-resided: both started before either finished.
    let granted: Vec<_> = out
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::JobGranted { cpu_milli: 500, .. }))
        .collect();
    assert_eq!(granted.len(), 2, "both jobs got half-CPU grants");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Capacity conservation: replay every event of a seeded fractional
    /// run through an [`AuditSink`] armed with the per-station capacity
    /// vectors; at no event time may the sum of granted shares exceed the
    /// station's capacity in any dimension.
    #[test]
    fn granted_capacity_never_exceeds_station_capacity(
        seed in 0u64..500,
        stations in 2usize..6,
        njobs in 4usize..16,
        cpu_choices in proptest::collection::vec(0usize..4, 16),
        hetero_caps in any::<bool>(),
    ) {
        let shares = [250u32, 500, 750, 1000];
        let profiles = if hetero_caps {
            vec![ResourceVec::WHOLE, ResourceVec::new(500, 500)]
        } else {
            vec![ResourceVec::WHOLE]
        };
        let config = ClusterConfig::builder()
            .stations(stations)
            .seed(seed)
            .policy(PolicyKind::Frac)
            .capacity_profiles(profiles.clone())
            .owner(OwnerConfig {
                profile: DiurnalProfile::flat(0.1),
                ..OwnerConfig::default()
            })
            .build()
            .expect("prop config is valid");
        let jobs: Vec<JobSpec> = (0..njobs as u64)
            .map(|i| {
                let milli = shares[cpu_choices[i as usize % cpu_choices.len()]];
                JobSpec {
                    id: JobId(i),
                    user: UserId((i % 3) as u32),
                    home: NodeId::new((i % stations as u64) as u32),
                    arrival: SimTime::from_secs(i * 600),
                    demand: SimDuration::from_hours(1 + i % 3),
                    image_bytes: 10_000,
                    syscalls_per_cpu_sec: 0.1,
                    binaries: Default::default(),
                    depends_on: Vec::new(),
                    width: 1,
                    resources: ResourceVec::share(milli),
                    speedup: Default::default(),
                }
            })
            .collect();
        let out = Run::new(config)
            .specs(jobs)
            .horizon(SimDuration::from_days(2))
            .execute();

        // Replay the recorded trace through a capacity-armed auditor.
        let capacities: Vec<ResourceVec> =
            (0..stations).map(|i| profiles[i % profiles.len()]).collect();
        let mut audit = AuditSink::new().with_capacities(capacities);
        for ev in out.trace.events() {
            audit.record(ev);
        }
        audit.finish(out.horizon);
        let capacity_violations: Vec<_> = audit
            .violations()
            .iter()
            .filter(|v| {
                matches!(
                    v.kind,
                    condor::core::audit::AuditViolationKind::CapacityExceeded { .. }
                        | condor::core::audit::AuditViolationKind::DoubleOccupancy { .. }
                )
            })
            .collect();
        prop_assert!(
            capacity_violations.is_empty(),
            "capacity conservation violated: {capacity_violations:?}"
        );
        prop_assert!(audit.is_clean(), "audit violations: {:?}", audit.violations());
    }
}
