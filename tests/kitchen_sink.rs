//! Feature-composition soak test: every extension enabled at once.
//!
//! The individual features (failures, reservations, mixed architectures,
//! gangs, dependency DAGs, checkpoint server, history-aware placement)
//! each have focused tests; this one turns them ALL on in a single long
//! run and checks the global invariants still hold. Interactions between
//! features are where schedulers rot.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::core::config::{FailureConfig, Reservation};
use condor::core::trace::TraceKind;
use condor::model::station::{Arch, ArchSet, ResourceVec};
use condor::prelude::*;
use condor_workload::dag::DagBuilder;

fn build_everything() -> (ClusterConfig, Vec<JobSpec>) {
    let config = ClusterConfig {
        stations: 12,
        seed: 4242,
        arch_pattern: vec![Arch::Vax, Arch::Sun],
        history_aware_placement: true,
        checkpoint_server: true,
        failures: Some(FailureConfig {
            mtbf: SimDuration::from_days(4),
            mttr: SimDuration::from_hours(2),
        }),
        reservations: vec![Reservation {
            holder: NodeId::new(1),
            machines: 2,
            from: SimTime::from_hours(72),
            until: SimTime::from_hours(84),
        }],
        ..ClusterConfig::default()
    };

    let mut jobs: Vec<JobSpec> = Vec::new();
    // A flood of ordinary jobs, mixed binaries.
    for i in 0..30u64 {
        jobs.push(JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(i % 48),
            demand: SimDuration::from_hours(2 + i % 6),
            image_bytes: 300_000 + (i % 5) * 150_000,
            syscalls_per_cpu_sec: 0.5 + (i % 3) as f64,
            binaries: if i % 3 == 0 { ArchSet::both() } else { ArchSet::vax_only() },
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    // The reservation holder's batch, timed for its window.
    for k in 0..4u64 {
        jobs.push(JobSpec {
            id: JobId(30 + k),
            user: UserId(1),
            home: NodeId::new(1),
            arrival: SimTime::from_hours(72),
            demand: SimDuration::from_hours(2),
            image_bytes: 400_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: ArchSet::both(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    // A workflow with a gang in the middle (prep → width-3 gang → report),
    // dual-binary so the mixed fleet can host it.
    let mut dag = DagBuilder::new(2, 2);
    dag.first_id(34);
    dag.arriving_at(SimTime::from_hours(5));
    let prep = dag.job(SimDuration::HOUR, &[]);
    let sim = dag.gang(3, SimDuration::from_hours(5), &[prep]);
    let _report = dag.job(SimDuration::HOUR, &[sim]);
    let mut dag_jobs = dag.build();
    for j in &mut dag_jobs {
        j.binaries = ArchSet::both();
    }
    jobs.extend(dag_jobs);
    (config, jobs)
}

#[test]
fn everything_on_at_once_still_upholds_the_guarantees() {
    let (config, jobs) = build_everything();
    let n = jobs.len();
    let out = run_cluster(config, jobs, SimDuration::from_days(30));

    // 1. The §1 guarantee: every admitted job completes (30 days is ample
    //    slack for ~120 h of work on 12 machines).
    let admitted = out.jobs.iter().filter(|j| !j.rejected).count();
    assert_eq!(admitted, n, "checkpoint server means nothing bounces");
    assert_eq!(
        out.completed_jobs().count(),
        n,
        "incomplete: {:?} (totals {:?})",
        out.jobs
            .iter()
            .filter(|j| j.state != JobState::Completed)
            .map(|j| (j.spec.id, j.state))
            .collect::<Vec<_>>(),
        out.totals
    );

    // 2. Exact work conservation, everywhere.
    for j in &out.jobs {
        assert_eq!(j.work_done, j.spec.demand, "{}", j.spec.id);
        assert!(j.remote_cpu >= j.work_done, "{}", j.spec.id);
    }

    // 3. The workflow ran in order, and the gang consumed 3× its work.
    let t = |id: u64| out.jobs[id as usize].completed_at.unwrap();
    assert!(t(34) < t(35) && t(35) < t(36), "workflow order");
    let gang = &out.jobs[35];
    assert_eq!(gang.remote_cpu, gang.work_done * 3);

    // 4. VAX-only jobs never started on SUN machines (odd indices).
    for ev in out.trace.events() {
        if let TraceKind::JobStarted { job, on } = ev.kind {
            if !out.jobs[job.0 as usize].spec.binaries.supports(Arch::Sun) {
                assert_eq!(on.index() % 2, 0, "{job} on SUN station {on}");
            }
        }
    }

    // 5. The reserved batch finished within its window.
    for k in 30..34u64 {
        let done = out.jobs[k as usize].completed_at.unwrap();
        assert!(
            done <= SimTime::from_hours(84),
            "reserved job {k} finished at {done}"
        );
    }

    // 6. Crashes happened and were survived.
    assert!(out.totals.station_failures > 0, "{:?}", out.totals);

    // 7. Utilization ledgers never overdraw a machine.
    for u in out.system_utilization_hourly() {
        assert!(u <= 1.0 + 1e-9, "hourly utilization {u}");
    }

    // 8. Determinism with everything on.
    let (config2, jobs2) = build_everything();
    let out2 = run_cluster(config2, jobs2, SimDuration::from_days(30));
    assert_eq!(out.totals, out2.totals);
    assert_eq!(out.trace.len(), out2.trace.len());
}

/// Every placement policy — the paper's Up-Down, the three baselines, the
/// capacity-aware packer, and both flavors of the replication family —
/// drives one fractional workload on a heterogeneous-capacity fleet, and
/// each recorded trace replays through the capacity-armed [`AuditSink`]
/// with zero violations. Policies differ in *which* station they pick;
/// none may ever overdraw one.
#[test]
fn every_policy_survives_the_capacity_armed_auditor() {
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("up-down", PolicyKind::default()),
        ("fifo", PolicyKind::Fifo),
        ("round-robin", PolicyKind::RoundRobin),
        ("random", PolicyKind::Random),
        ("frac", PolicyKind::Frac),
        ("redundant k=2", PolicyKind::Redundant(RedundancyConfig::default())),
        (
            "redundant k=2 + opp-ckpt",
            PolicyKind::Redundant(RedundancyConfig {
                checkpointing: CkptTiming::Opportunistic {
                    check_every: SimDuration::from_minutes(10),
                    hazard_threshold: 1.0,
                },
                ..RedundancyConfig::default()
            }),
        ),
    ];
    // Alternating whole machines and half-capacity stations.
    let profiles = vec![ResourceVec::WHOLE, ResourceVec::new(500, 500)];
    let stations = 8usize;
    for (name, policy) in policies {
        let config = ClusterConfig::builder()
            .stations(stations)
            .seed(1988)
            .policy(policy)
            .capacity_profiles(profiles.clone())
            .build()
            .expect("kitchen-sink policy config is valid");
        // Whole-machine jobs interleaved with quarter- and half-share
        // jobs, spread across homes so queues form and drain.
        let shares = [1000u32, 250, 500, 1000, 250];
        let jobs: Vec<JobSpec> = (0..24u64)
            .map(|i| JobSpec {
                id: JobId(i),
                user: UserId((i % 3) as u32),
                home: NodeId::new((i % stations as u64) as u32),
                arrival: SimTime::from_secs(i * 1800),
                demand: SimDuration::from_hours(1 + i % 4),
                image_bytes: 250_000,
                syscalls_per_cpu_sec: 0.5,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: ResourceVec::share(shares[i as usize % shares.len()]),
                speedup: Default::default(),
            })
            .collect();
        let out = Run::new(config)
            .specs(jobs)
            .horizon(SimDuration::from_days(4))
            .execute();
        let capacities: Vec<ResourceVec> =
            (0..stations).map(|i| profiles[i % profiles.len()]).collect();
        let mut audit = AuditSink::new().with_capacities(capacities);
        for ev in out.trace.events() {
            audit.record(ev);
        }
        audit.finish(out.horizon);
        assert!(
            audit.is_clean(),
            "policy {name}: audit violations {:?}",
            audit.violations()
        );
        assert!(out.totals.placements > 0, "policy {name} placed nothing");
    }
}
