//! Consistency suite for the incrementally maintained coordinator state:
//! the free/requester/host membership sets, the bucketed free-capacity
//! index, the struct-of-arrays occupancy totals, and the raw queue total
//! must equal a from-scratch recomputation at *any* point in a run, not
//! just at poll boundaries.
//!
//! Debug builds already cross-check after every poll's flush
//! (`debug_check_coord`); these tests drive the same rescan through the
//! public `verify_coord_cache` hook between arbitrary events, in every
//! build profile, across seeded workloads that exercise the paths most
//! likely to forget a dirty-mark: fractional capacity packing, chaos
//! schedules (partitions make stations dark, outages drop polls), station
//! failures, reservations, and gang placements.

use condor::core::chaos::{ChaosConfig, ChaosGen, ChaosSchedule};
use condor::model::station::ResourceVec;
use condor::core::config::Reservation;
use condor::prelude::*;
use condor::sim::engine::Engine;
use proptest::prelude::*;

/// Steps the cluster to `horizon`, rescanning the coordinator cache every
/// `stride` events and once at the end. Panics (inside the hook) on any
/// divergence between maintained and recomputed state.
fn drive_and_verify(
    cfg: ClusterConfig,
    specs: Vec<JobSpec>,
    horizon: SimDuration,
    stride: u64,
) -> u64 {
    let mut eng = Engine::new(Cluster::new(cfg, specs));
    Cluster::prime(&mut eng);
    let end = SimTime::ZERO + horizon;
    let mut dispatched = 0u64;
    while eng.next_event_time().is_some_and(|t| t <= end) {
        eng.step();
        dispatched += 1;
        if dispatched.is_multiple_of(stride) {
            eng.model_mut().verify_coord_cache();
        }
    }
    eng.model_mut().verify_coord_cache();
    dispatched
}

fn mixed_jobs(n: u64, stations: u64, fractional: bool) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 4) as u32),
            home: NodeId::new((i % stations) as u32),
            arrival: SimTime::from_secs(400 * i),
            demand: SimDuration::from_hours(1 + i % 3),
            image_bytes: 300_000 + 40_000 * (i % 5),
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            speedup: Default::default(),
            resources: if fractional {
                // Mixed shares so stations pack at different remainders.
                ResourceVec::share(250 + 250 * (i % 3) as u32)
            } else {
                ResourceVec::WHOLE
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Default policy under a seeded chaos schedule: partitions, outages,
    /// duplicated and delayed polls must all keep the maintained indexes
    /// equal to recomputation mid-run.
    #[test]
    fn chaos_runs_keep_indexes_consistent(
        seed in 0u64..1_000,
        stations in 8usize..32,
        faults in 1usize..10,
    ) {
        let horizon = SimDuration::from_days(2);
        let gen = ChaosGen { horizon, stations: stations as u32, faults };
        let schedule = ChaosSchedule::generate(seed, &gen);
        let cfg = ClusterConfig::builder()
            .stations(stations)
            .seed(seed)
            .record_trace(false)
            .chaos(ChaosConfig::new(schedule))
            .build()
            .expect("valid config");
        let events = drive_and_verify(cfg, mixed_jobs(18, stations as u64, false), horizon, 157);
        prop_assert!(events > 0);
    }

    /// Fractional capacity profiles under FracPolicy: the bucketed
    /// capacity index tracks partial remainders as slots pack and drain,
    /// which is exactly where a stale `free_cpu_milli` key would hide.
    #[test]
    fn fractional_runs_keep_capacity_index_consistent(
        seed in 0u64..1_000,
        stations in 8usize..28,
    ) {
        let cfg = ClusterConfig::builder()
            .stations(stations)
            .seed(seed)
            .record_trace(false)
            .policy(PolicyKind::Frac)
            .capacity_profiles(vec![
                ResourceVec::WHOLE,
                ResourceVec::share(1500),
                ResourceVec::new(2000, 1000),
            ])
            .build()
            .expect("valid config");
        let events =
            drive_and_verify(cfg, mixed_jobs(24, stations as u64, true), SimDuration::from_days(2), 131);
        prop_assert!(events > 0);
    }
}

/// Kitchen-sink determinism case: failures, a standing reservation, a
/// width-2 gang, and history-aware placement together — the paths that
/// mutate occupancy outside the plain place/finish cycle (crash teardown
/// zeroes a station's total wholesale, gang teardown walks members).
#[test]
fn failures_reservations_and_gangs_stay_consistent() {
    let mut specs = mixed_jobs(20, 12, false);
    specs[7].width = 2;
    specs[13].width = 2;
    let cfg = ClusterConfig::builder()
        .stations(12)
        .seed(77)
        .record_trace(false)
        .history_aware_placement(true)
        .failures(FailureConfig {
            mtbf: SimDuration::from_days(1),
            mttr: SimDuration::from_hours(4),
        })
        .reservation(Reservation {
            holder: NodeId::new(0),
            machines: 3,
            from: SimTime::from_hours(6),
            until: SimTime::from_hours(30),
        })
        .build()
        .expect("valid config");
    let events = drive_and_verify(cfg, specs, SimDuration::from_days(3), 97);
    assert!(events > 1_000, "scenario too quiet to exercise the cache ({events} events)");
}
