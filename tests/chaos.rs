//! Chaos-harness integration tests: seeded fault schedules must leave the
//! protocol audit-clean with balanced transfer accounting, schedules must
//! replay bit-identically through their JSON form, and each recovery path
//! (autonomous local starts, checkpoint retries) must actually engage.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::core::chaos::{ChaosEntry, Fault};
use condor::model::diurnal::DiurnalProfile;
use condor::model::owner::OwnerConfig;
use condor::prelude::*;
use proptest::prelude::*;

/// Busy, flappy owners so evictions — and checkpoint traffic — happen.
fn stormy(stations: usize) -> ClusterConfig {
    ClusterConfig {
        stations,
        owner: OwnerConfig {
            profile: DiurnalProfile::flat(0.5),
            mean_active_period: SimDuration::from_minutes(8),
            ..OwnerConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn jobs(n: u64, stations: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new((i % stations) as u32),
            arrival: SimTime::from_secs(600 * i),
            demand: SimDuration::from_hours(2),
            image_bytes: 400_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect()
}

/// The acceptance sweep: 50 seed-derived schedules over the one-week
/// scenario, every run audit-clean and conservation-balanced. This is the
/// `cargo test` twin of `condor chaos --seeds 50`.
#[test]
fn fifty_seeded_schedules_run_audit_clean_with_conservation() {
    let scenario = one_week(1988);
    let horizon = SimDuration::from_days(2);
    let gen = ChaosGen {
        horizon,
        stations: scenario.config.stations as u32,
        faults: 8,
    };
    let report = explore(&scenario.config, &scenario.jobs, horizon, &gen, 0..50);
    assert_eq!(report.cases, 50);
    for f in &report.failures {
        eprintln!(
            "seed {} failed ({} violations), shrunk to {} fault(s): {}",
            f.seed,
            f.violations.len(),
            f.shrunk.entries.len(),
            f.shrunk.to_json()
        );
    }
    assert!(report.is_clean(), "{} seed(s) failed", report.failures.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serialization is faithful enough to *replay*: a generated schedule
    /// and its JSON round-trip drive bit-identical traces.
    #[test]
    fn json_round_trip_replays_bit_identically(
        seed in 0u64..10_000,
        faults in 1usize..10,
    ) {
        let gen = ChaosGen {
            horizon: SimDuration::from_days(2),
            stations: 6,
            faults,
        };
        let schedule = ChaosSchedule::generate(seed, &gen);
        let replayed = ChaosSchedule::from_json(&schedule.to_json()).expect("round-trip parses");
        prop_assert_eq!(&schedule, &replayed);

        let run = |sched: ChaosSchedule| {
            let config = ClusterConfig {
                chaos: Some(ChaosConfig::new(sched)),
                ..stormy(6)
            };
            run_cluster(config, jobs(10, 6), SimDuration::from_days(2))
        };
        let a = run(schedule);
        let b = run(replayed);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            prop_assert_eq!(x, y);
        }
    }
}

/// While the coordinator is down, stations fall back to autonomous local
/// starts: queued jobs begin on their own (idle) home machines, visible
/// both as `ChaosLocalStart` trace events and `chaos_local_start` span
/// markers — and the degraded run still passes the audit.
#[test]
fn coordinator_outage_degrades_to_local_starts() {
    let outage = SimDuration::from_hours(8);
    let schedule = ChaosSchedule {
        entries: vec![ChaosEntry {
            at: SimTime::ZERO,
            fault: Fault::CoordinatorOutage { duration: outage },
        }],
    };
    // Mostly-idle owners: with the coordinator dark, the only obstacle to
    // a local start is the protocol, not the machines.
    let config = ClusterConfig {
        stations: 6,
        owner: OwnerConfig {
            profile: DiurnalProfile::flat(0.15),
            ..OwnerConfig::default()
        },
        chaos: Some(ChaosConfig::new(schedule)),
        ..ClusterConfig::default()
    };
    let audit = SharedSink::new(
        AuditSink::new().with_poll_interval(config.costs.coordinator_poll_interval),
    );
    let spans = SharedSink::new(SpanSink::new());
    let out = run_cluster_with_sinks(
        config,
        jobs(12, 6),
        SimDuration::from_days(2),
        vec![Box::new(audit.clone()), Box::new(spans.clone())],
    );

    assert!(
        out.totals.local_starts > 0,
        "no autonomous starts during an {outage} coordinator outage: {:?}",
        out.totals
    );
    let local_starts: Vec<_> = out
        .trace
        .filtered(|k| matches!(k, TraceKind::ChaosLocalStart { .. }))
        .collect();
    assert_eq!(local_starts.len() as u64, out.totals.local_starts);
    for ev in &local_starts {
        assert!(ev.at < SimTime::ZERO + outage, "local start after recovery at {}", ev.at);
        let TraceKind::ChaosLocalStart { job, on } = ev.kind else { unreachable!() };
        assert_eq!(on, out.jobs[job.0 as usize].spec.home, "local starts run at home");
    }
    // The outage itself is on the record, down before up.
    let down = out.trace.filtered(|k| matches!(k, TraceKind::ChaosCoordDown)).count();
    let up = out.trace.filtered(|k| matches!(k, TraceKind::ChaosCoordUp)).count();
    assert_eq!((down, up), (1, 1));
    // Span markers carry the same story for timeline tooling.
    let markers = spans.with(|s| {
        s.log().markers.iter().filter(|m| m.label == "chaos_local_start").count()
    });
    assert_eq!(markers as u64, out.totals.local_starts);
    audit.with(|a| {
        assert!(a.is_clean(), "degraded run must stay legal: {:?}", a.violations());
    });
}

/// A corruption window forces checkpoint retries, and the retries must not
/// double-count: every byte the bus moved is accounted for by exactly one
/// trace event, and rollback totals stay balanced.
#[test]
fn checkpoint_retry_accounting_balances() {
    let base = stormy(6);
    let specs = jobs(10, 6);
    let horizon = SimDuration::from_days(3);
    let schedule = ChaosSchedule {
        entries: vec![ChaosEntry {
            at: SimTime::ZERO,
            fault: Fault::CkptCorrupt { duration: SimDuration::from_days(3) },
        }],
    };
    let violations = verify_schedule(&base, &specs, horizon, &schedule);
    assert!(violations.is_empty(), "{violations:?}");

    let config = ClusterConfig {
        chaos: Some(ChaosConfig::new(schedule)),
        ..base
    };
    let out = run_cluster(config.clone(), specs, horizon);
    assert!(
        out.totals.ckpt_retries > 0,
        "corruption window never bit a checkpoint: {:?}",
        out.totals
    );
    assert!(out.bus_bytes_moved > 0, "accounting check would be vacuous");
    let corruptions = out
        .trace
        .filtered(|k| matches!(k, TraceKind::ChaosCkptCorrupted { .. }))
        .count();
    assert_eq!(corruptions as u64, out.totals.ckpt_retries);
    // The reconciliation: every bus transfer and byte maps to exactly one
    // trace event (placement, checkpoint, periodic checkpoint, or a retry
    // that fired before the horizon) — retries never double-book.
    let bad = verify_conservation(&config, &out);
    assert!(bad.is_empty(), "{bad:?}");
    // Crash rollbacks balance too (trivially zero here: no failure model).
    let rollbacks = out
        .trace
        .filtered(|k| matches!(k, TraceKind::CrashRollback { .. }))
        .count();
    assert_eq!(rollbacks as u64, out.totals.crash_rollbacks);
}

/// Chaos faults route deterministically to the shard that owns them —
/// partitions to the pools their station ranges intersect, control-plane
/// faults to the coordinator's pool, corruption windows everywhere — so a
/// sharded run under fault injection is still bit-identical at every
/// worker thread count.
#[test]
fn chaos_under_parallelism_is_thread_invariant() {
    let gen = ChaosGen {
        horizon: SimDuration::from_days(2),
        stations: 9,
        faults: 6,
    };
    for seed in [7u64, 1988, 4242] {
        let schedule = ChaosSchedule::generate(seed, &gen);
        let mut reference: Option<Vec<TraceEvent>> = None;
        for threads in [1usize, 2, 4] {
            let config = ClusterConfig {
                chaos: Some(ChaosConfig::new(schedule.clone())),
                topology: Some(PoolTopology::uniform(3, SimDuration::from_secs(120))),
                ..stormy(9)
            };
            let out = run_cluster_with_threads(
                config,
                jobs(12, 9),
                SimDuration::from_days(2),
                threads,
            );
            assert!(!out.trace.is_empty(), "chaos run produced no trace (seed {seed})");
            let events = out.trace.events().to_vec();
            match &reference {
                None => reference = Some(events),
                Some(r) => assert_eq!(
                    &events, r,
                    "chaos trace diverged at {threads} threads (seed {seed})"
                ),
            }
        }
        // With no pinned count, the runner falls back to
        // `default_threads()`, which honors CONDOR_THREADS — the CI
        // determinism smoke sets it to 2 to exercise a real multi-worker
        // replay through this arm.
        let config = ClusterConfig {
            chaos: Some(ChaosConfig::new(schedule.clone())),
            topology: Some(PoolTopology::uniform(3, SimDuration::from_secs(120))),
            ..stormy(9)
        };
        let out = run_cluster(config, jobs(12, 9), SimDuration::from_days(2));
        assert_eq!(
            out.trace.events(),
            &reference.unwrap()[..],
            "chaos trace diverged under default_threads() (seed {seed})"
        );
    }
}
