//! Golden-trace regression guard.
//!
//! Runs the paper-month scenario at a pinned seed and hashes every JSONL
//! trace line. The digest below was captured before the hot-path
//! optimization work began; any change to it means an "optimization"
//! altered simulation behavior — bit-identical output is the contract that
//! makes aggressive hot-path work safe.
//!
//! If you *intentionally* change simulation semantics (new event kind, new
//! scheduling rule), re-pin the digest in the same commit and say so in the
//! commit message.

use condor_core::chaos::ChaosConfig;
use condor_core::cluster::{run_cluster, RunOutput};
use condor_workload::scenarios::paper_month;

/// FNV-1a, 64-bit. Implemented inline so the guard has zero dependencies
/// and an auditable definition.
fn fnv1a64(data: &[u8], mut hash: u64) -> u64 {
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The pinned digest of the paper-month JSONL trace at seed 1988.
/// Captured from the pre-optimization simulator; see module docs.
const GOLDEN_SEED: u64 = 1988;
const GOLDEN_DIGEST: u64 = 0xE7D7_8885_6DED_7AEA;
const GOLDEN_EVENTS: usize = 56_869;

fn digest(out: &RunOutput) -> (u64, usize) {
    let mut hash = FNV_OFFSET;
    let mut events = 0usize;
    for ev in out.trace.events() {
        hash = fnv1a64(ev.to_jsonl().as_bytes(), hash);
        hash = fnv1a64(b"\n", hash);
        events += 1;
    }
    (hash, events)
}

#[test]
fn paper_month_trace_digest_is_stable() {
    let scenario = paper_month(GOLDEN_SEED);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let (hash, events) = digest(&out);
    assert_eq!(
        events, GOLDEN_EVENTS,
        "paper-month event count changed — simulation behavior drifted"
    );
    assert_eq!(
        hash, GOLDEN_DIGEST,
        "paper-month JSONL trace digest changed (got {hash:#018X}) — \
         an optimization altered simulation behavior"
    );
}

/// A configured-but-empty chaos schedule must be invisible: fault
/// injection is pre-expanded schedule data, never a hot-path RNG draw, so
/// zero faults means zero perturbation — bit for bit.
#[test]
fn zero_fault_chaos_matches_the_golden_digest() {
    let mut scenario = paper_month(GOLDEN_SEED);
    scenario.config.chaos = Some(ChaosConfig::default());
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let (hash, events) = digest(&out);
    assert_eq!(events, GOLDEN_EVENTS, "an empty chaos schedule changed the event count");
    assert_eq!(
        hash, GOLDEN_DIGEST,
        "an empty chaos schedule perturbed the trace (got {hash:#018X})"
    );
}
