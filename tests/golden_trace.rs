//! Golden-trace regression guard.
//!
//! Runs the paper-month scenario at a pinned seed and hashes every JSONL
//! trace line. The digest below was captured before the hot-path
//! optimization work began; any change to it means an "optimization"
//! altered simulation behavior — bit-identical output is the contract that
//! makes aggressive hot-path work safe.
//!
//! If you *intentionally* change simulation semantics (new event kind, new
//! scheduling rule), re-pin the digest in the same commit and say so in the
//! commit message.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor_core::chaos::ChaosConfig;
use condor_core::cluster::{run_cluster, run_cluster_with_threads, RunOutput};
use condor_core::config::PoolTopology;
use condor_sim::time::SimDuration;
use condor_workload::scenarios::{fleet_scale, paper_month};

/// FNV-1a, 64-bit. Implemented inline so the guard has zero dependencies
/// and an auditable definition.
fn fnv1a64(data: &[u8], mut hash: u64) -> u64 {
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The pinned digest of the paper-month JSONL trace at seed 1988.
/// Captured from the pre-optimization simulator; see module docs.
const GOLDEN_SEED: u64 = 1988;
const GOLDEN_DIGEST: u64 = 0xE7D7_8885_6DED_7AEA;
const GOLDEN_EVENTS: usize = 56_869;

fn digest(out: &RunOutput) -> (u64, usize) {
    let mut hash = FNV_OFFSET;
    let mut events = 0usize;
    for ev in out.trace.events() {
        hash = fnv1a64(ev.to_jsonl().as_bytes(), hash);
        hash = fnv1a64(b"\n", hash);
        events += 1;
    }
    (hash, events)
}

#[test]
fn paper_month_trace_digest_is_stable() {
    let scenario = paper_month(GOLDEN_SEED);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let (hash, events) = digest(&out);
    assert_eq!(
        events, GOLDEN_EVENTS,
        "paper-month event count changed — simulation behavior drifted"
    );
    assert_eq!(
        hash, GOLDEN_DIGEST,
        "paper-month JSONL trace digest changed (got {hash:#018X}) — \
         an optimization altered simulation behavior"
    );
}

/// Fleet-scale pin: 1,000 stations over two days at the same seed. The
/// 40-station paper month exercises every subsystem but touches only a
/// handful of coordinator-cache words; this digest pins the *scale* path —
/// bitset maintenance, truncated free lists, capacity indexes — where an
/// off-by-one would never perturb a small fleet. `fleet_scale` ships with
/// tracing off (it is a throughput scenario); the pin turns it back on.
const FLEET_GOLDEN_DIGEST: u64 = 0xB4B1_335B_8FE9_A915;
const FLEET_GOLDEN_EVENTS: usize = 61_415;

#[test]
fn fleet_scale_1000_station_trace_digest_is_stable() {
    let mut scenario = fleet_scale(GOLDEN_SEED, 1000, 1, 2);
    scenario.config.record_trace = true;
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let (hash, events) = digest(&out);
    assert_eq!(
        events, FLEET_GOLDEN_EVENTS,
        "1,000-station event count changed — simulation behavior drifted"
    );
    assert_eq!(
        hash, FLEET_GOLDEN_DIGEST,
        "1,000-station JSONL trace digest changed (got {hash:#018X}) — \
         a fleet-scale optimization altered simulation behavior"
    );
}

/// A configured-but-empty chaos schedule must be invisible: fault
/// injection is pre-expanded schedule data, never a hot-path RNG draw, so
/// zero faults means zero perturbation — bit for bit.
#[test]
fn zero_fault_chaos_matches_the_golden_digest() {
    let mut scenario = paper_month(GOLDEN_SEED);
    scenario.config.chaos = Some(ChaosConfig::default());
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let (hash, events) = digest(&out);
    assert_eq!(events, GOLDEN_EVENTS, "an empty chaos schedule changed the event count");
    assert_eq!(
        hash, GOLDEN_DIGEST,
        "an empty chaos schedule perturbed the trace (got {hash:#018X})"
    );
}

/// The redundancy policy with replication off (`k = 0`, inherited
/// checkpoint timing) must be bit-identical to plain Up-Down: placement
/// decisions delegate to the inner Up-Down allocator and every
/// spawn/reclaim hook short-circuits on `k == 0` before touching state.
/// This is the anchor that lets the speculation machinery ship inside the
/// hot path at zero cost.
#[test]
fn redundancy_off_matches_the_golden_digest() {
    use condor_core::config::PolicyKind;
    use condor_core::redundancy::RedundancyConfig;
    let mut scenario = paper_month(GOLDEN_SEED);
    scenario.config.policy = PolicyKind::Redundant(RedundancyConfig::off());
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let (hash, events) = digest(&out);
    assert_eq!(events, GOLDEN_EVENTS, "redundancy-off changed the event count");
    assert_eq!(
        hash, GOLDEN_DIGEST,
        "redundancy-off perturbed the trace (got {hash:#018X}) — the \
         disabled policy must be invisible bit for bit"
    );
    assert_eq!(out.totals.replicas_spawned, 0);
    assert_eq!(out.totals.wasted_replica_work, 0);
}

/// Same guarantee at fleet scale: 1,000 stations through the scale path
/// (bitsets, truncated free lists) with the disabled policy.
#[test]
fn redundancy_off_matches_the_fleet_golden_digest() {
    use condor_core::config::PolicyKind;
    use condor_core::redundancy::RedundancyConfig;
    let mut scenario = fleet_scale(GOLDEN_SEED, 1000, 1, 2);
    scenario.config.record_trace = true;
    scenario.config.policy = PolicyKind::Redundant(RedundancyConfig::off());
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    assert_eq!(
        digest(&out),
        (FLEET_GOLDEN_DIGEST, FLEET_GOLDEN_EVENTS),
        "redundancy-off perturbed the 1,000-station trace"
    );
}

/// A one-pool topology routes through the windowed sharded runner, yet
/// must stay bit-identical to the classic serial run — at every worker
/// thread count. This is the anchor that lets the parallel path share the
/// serial path's golden digest.
#[test]
fn one_pool_topology_matches_the_golden_digest_at_any_thread_count() {
    for threads in [1, 2, 4, 8] {
        let mut scenario = paper_month(GOLDEN_SEED);
        scenario.config.topology = Some(PoolTopology::uniform(1, SimDuration::from_secs(60)));
        let out = run_cluster_with_threads(scenario.config, scenario.jobs, scenario.horizon, threads);
        let (hash, events) = digest(&out);
        assert_eq!(
            events, GOLDEN_EVENTS,
            "one-pool sharded run changed the event count at {threads} threads"
        );
        assert_eq!(
            hash, GOLDEN_DIGEST,
            "one-pool sharded run diverged from the golden digest at \
             {threads} threads (got {hash:#018X})"
        );
    }
    // With no pinned count, the sharded runner falls back to
    // `default_threads()`, which honors CONDOR_THREADS — the CI
    // determinism smoke sets it to 4 so a real multi-worker run flows
    // through this arm.
    let mut scenario = paper_month(GOLDEN_SEED);
    scenario.config.topology = Some(PoolTopology::uniform(1, SimDuration::from_secs(60)));
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    assert_eq!(
        digest(&out),
        (GOLDEN_DIGEST, GOLDEN_EVENTS),
        "one-pool sharded run diverged under default_threads()"
    );
}

/// The multi-pool partitioned simulation is a *different* model than the
/// monolithic one (per-pool coordinators, decorrelated owner streams), so
/// it has its own trace — but that trace must be bit-identical at every
/// worker thread count: threads only change how many shards advance
/// concurrently, never what any shard computes.
#[test]
fn multi_pool_trace_is_bit_identical_at_any_thread_count() {
    let mut reference: Option<(u64, usize)> = None;
    for threads in [1, 2, 4, 8] {
        let mut scenario = paper_month(GOLDEN_SEED);
        scenario.config.topology =
            Some(PoolTopology::uniform(4, SimDuration::from_secs(300)));
        let out = run_cluster_with_threads(scenario.config, scenario.jobs, scenario.horizon, threads);
        let d = digest(&out);
        assert!(d.1 > 0, "multi-pool run produced an empty trace");
        match reference {
            None => reference = Some(d),
            Some(r) => assert_eq!(
                d, r,
                "multi-pool trace diverged between 1 and {threads} threads"
            ),
        }
    }
}
