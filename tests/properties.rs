//! Property-based tests over randomly generated workloads and owner
//! behaviours: conservation laws and determinism must hold for *any*
//! configuration, not just the paper's.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::prelude::*;
use condor_model::diurnal::DiurnalProfile;
use condor_model::owner::OwnerConfig;
use proptest::prelude::*;

fn arb_jobs(max_jobs: usize, stations: u32) -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (
            0u32..5,               // user
            0u32..stations,        // home
            0u64..72,              // arrival hour
            1u64..20,              // demand hours
            100_000u64..2_000_000, // image bytes
            0.0f64..5.0,           // syscall rate
        ),
        1..max_jobs,
    )
    .prop_map(|raw| {
        let mut jobs: Vec<JobSpec> = raw
            .into_iter()
            .map(|(user, home, arr, demand, image, rate)| JobSpec {
                id: JobId(0), // assigned below
                user: UserId(user),
                home: NodeId::new(home),
                arrival: SimTime::from_hours(arr),
                demand: SimDuration::from_hours(demand),
                image_bytes: image,
                syscalls_per_cpu_sec: rate,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: Default::default(),
                speedup: Default::default(),
            })
            .collect();
        jobs.sort_by_key(|j| j.arrival);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = JobId(i as u64);
        }
        jobs
    })
}

fn config(seed: u64, stations: usize, activity: f64) -> ClusterConfig {
    ClusterConfig {
        stations,
        seed,
        owner: OwnerConfig {
            profile: DiurnalProfile::flat(activity),
            ..OwnerConfig::default()
        },
        ..ClusterConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: completed jobs did exactly their demand; gross remote
    /// consumption covers net work; leverage and wait ratios are sane.
    #[test]
    fn conservation_laws_hold(
        jobs in arb_jobs(20, 4),
        seed in 0u64..1_000,
        activity in 0.05f64..0.6,
    ) {
        let out = run_cluster(config(seed, 4, activity), jobs, SimDuration::from_days(14));
        for j in &out.jobs {
            prop_assert!(j.remote_cpu >= j.work_done.saturating_sub(SimDuration::MILLISECOND));
            if j.state == JobState::Completed {
                prop_assert_eq!(j.work_done, j.spec.demand);
                let turnaround = j.turnaround().unwrap();
                prop_assert!(turnaround >= j.spec.demand);
                if let Some(w) = j.wait_ratio() {
                    prop_assert!(w >= 0.0);
                }
                if let Some(l) = j.leverage() {
                    prop_assert!(l > 0.0);
                }
                prop_assert!(j.placements >= 1);
            }
            // Grace strategy never loses work.
            prop_assert_eq!(j.work_lost, SimDuration::ZERO);
        }
    }

    /// Capacity accounting: consumed remote CPU never exceeds available
    /// idle capacity; utilizations stay in [0, 1].
    #[test]
    fn capacity_is_never_overdrawn(
        jobs in arb_jobs(16, 3),
        seed in 0u64..1_000,
    ) {
        let out = run_cluster(config(seed, 3, 0.3), jobs, SimDuration::from_days(10));
        prop_assert!(out.consumed_cpu_hours() <= out.available_station_hours() + 1e-6);
        let sys = out.mean_system_utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sys));
        for u in out.system_utilization_hourly() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    /// Determinism: identical inputs give byte-identical outcomes.
    #[test]
    fn runs_are_reproducible(
        jobs in arb_jobs(10, 3),
        seed in 0u64..1_000,
    ) {
        let a = run_cluster(config(seed, 3, 0.25), jobs.clone(), SimDuration::from_days(5));
        let b = run_cluster(config(seed, 3, 0.25), jobs, SimDuration::from_days(5));
        prop_assert_eq!(a.totals, b.totals);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            prop_assert_eq!(x.state, y.state);
            prop_assert_eq!(x.work_done, y.work_done);
            prop_assert_eq!(x.support_us, y.support_us);
            prop_assert_eq!(x.checkpoints, y.checkpoints);
        }
    }

    /// Streaming sinks observe exactly the buffered trace, event for
    /// event, and the JSONL codec round-trips the whole stream.
    #[test]
    fn sinks_mirror_the_trace(
        jobs in arb_jobs(12, 3),
        seed in 0u64..1_000,
    ) {
        let sink = SharedSink::new(VecSink::new());
        let streamed = run_cluster_with_sinks(
            config(seed, 3, 0.25),
            jobs.clone(),
            SimDuration::from_days(5),
            vec![Box::new(sink.clone())],
        );
        let buffered = run_cluster(config(seed, 3, 0.25), jobs, SimDuration::from_days(5));
        let events = sink.try_into_inner().unwrap().into_events();
        prop_assert_eq!(&events, buffered.trace.events());
        prop_assert_eq!(streamed.telemetry.events_total as usize, events.len());
        let text = condor::metrics::export::events_to_jsonl(&events);
        let back = condor::metrics::export::events_from_jsonl(&text).unwrap();
        prop_assert_eq!(back, events);
    }

    /// Every policy serves every admitted job eventually when owners are
    /// mostly idle and there is enough time.
    #[test]
    fn all_policies_drain_the_queue(
        jobs in arb_jobs(8, 3),
        policy_idx in 0usize..4,
    ) {
        let policy = match policy_idx {
            0 => PolicyKind::UpDown(UpDownConfig::default()),
            1 => PolicyKind::Fifo,
            2 => PolicyKind::RoundRobin,
            _ => PolicyKind::Random,
        };
        let cfg = ClusterConfig {
            policy,
            ..config(9, 3, 0.05)
        };
        let total_demand_h: f64 = jobs.iter().map(|j| j.demand.as_hours_f64()).sum();
        // Horizon with generous slack for queueing on 3 stations.
        let days = (total_demand_h / 24.0 + 10.0).ceil() as u64;
        let out = run_cluster(cfg, jobs, SimDuration::from_days(days));
        let admitted = out.jobs.iter().filter(|j| !j.rejected).count();
        let done = out.completed_jobs().count();
        prop_assert_eq!(done, admitted, "policy {} left work behind", out.policy_name);
    }
}

/// Regression: owner flickers shorter than the detection interval used to
/// double-count the machine (locally busy *and* remotely busy), pushing an
/// hourly bucket over 100% (found by `capacity_is_never_overdrawn`).
#[test]
fn owner_flicker_never_overdraws_a_bucket() {
    let mk = |id: u64, arr: u64, dem: u64| JobSpec {
        id: JobId(id),
        user: UserId(0),
        home: NodeId::new(0),
        arrival: SimTime::from_millis(arr),
        demand: SimDuration::from_millis(dem),
        image_bytes: 100_000,
        syscalls_per_cpu_sec: 0.0,
        binaries: Default::default(),
        depends_on: Vec::new(),
        width: 1,
        resources: Default::default(),
        speedup: Default::default(),
    };
    let jobs = vec![mk(0, 79_200_000, 39_600_000), mk(1, 82_800_000, 43_200_000)];
    let cfg = ClusterConfig {
        stations: 3,
        seed: 688,
        owner: OwnerConfig {
            profile: DiurnalProfile::flat(0.3),
            ..OwnerConfig::default()
        },
        ..ClusterConfig::default()
    };
    let out = run_cluster(cfg, jobs, SimDuration::from_days(10));
    for u in out.system_utilization_hourly() {
        assert!(u <= 1.0 + 1e-9, "hourly utilization {u} over capacity");
    }
}
