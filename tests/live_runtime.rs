//! Workspace-level live-runtime integration: the threaded mini-Condor
//! driven by the same stochastic owner model as the simulator, with result
//! correctness verified against uninterrupted reference runs.

use std::time::Duration;

use condor::model::diurnal::DiurnalProfile;
use condor::model::owner::OwnerConfig;
use condor::runtime::owners::OwnerSimulator;
use condor::runtime::program::{run_to_completion, MonteCarloPi, PrimeCounter, SeriesSum};
use condor::runtime::runtime::{Runtime, RuntimeConfig};

#[test]
fn live_pool_under_stochastic_owners_produces_exact_results() {
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 4,
        slice_units: 1_000,
        poll_interval: Duration::from_millis(10),
        grace: Duration::from_millis(25),
        ..RuntimeConfig::default()
    });

    // Reference results computed straight.
    let expected: Vec<(u64, Vec<u8>)> = vec![
        (rt.submit(0, &PrimeCounter::new(60_000)), {
            run_to_completion(&mut PrimeCounter::new(60_000))
        }),
        (rt.submit(1, &MonteCarloPi::new(5, 8_000_000)), {
            let mut p = MonteCarloPi::new(5, 8_000_000);
            run_to_completion(&mut p)
        }),
        (rt.submit(2, &SeriesSum::new(30_000_000, 1_000_003)), {
            let mut p = SeriesSum::new(30_000_000, 1_000_003);
            run_to_completion(&mut p)
        }),
    ];

    // Aggressive owners at a compressed timescale.
    let owners = OwnerSimulator::start(
        rt.owner_flags(),
        OwnerConfig {
            profile: DiurnalProfile::flat(0.4),
            mean_active_period: condor_sim::time::SimDuration::from_minutes(3),
            ..OwnerConfig::default()
        },
        Duration::from_millis(3), // 1 sim minute = 3 ms
        99,
    );

    let report = rt.run(Duration::from_secs(120));
    let transitions = owners.stop();
    // Drain any stragglers with owners gone.
    let report = if report.unfinished.is_empty() {
        report
    } else {
        rt.run(Duration::from_secs(120))
    };
    assert!(report.unfinished.is_empty(), "{report:?}");
    assert!(transitions > 0, "owners must have come and gone");
    for (job, want) in expected {
        assert_eq!(report.results[&job], want, "job {job} corrupted");
    }
    rt.shutdown();
}
