//! Protocol-invariant tests: replay the cluster's event trace and verify
//! that every observable sequence is legal — per job *and* per station.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use std::collections::HashMap;

use condor::core::trace::TraceKind;
use condor::prelude::*;
use condor::workload::scenarios::paper_month;
use condor_net::NodeId;

fn stormy_output(seed: u64) -> RunOutput {
    let scenario = paper_month(seed);
    run_cluster(scenario.config, scenario.jobs, scenario.horizon)
}

/// Per-job lifecycle replay: arrivals precede placements, placements
/// precede starts, a completion is terminal, and checkpoint transfers are
/// balanced.
#[test]
fn per_job_event_sequences_are_legal() {
    let out = stormy_output(1988);
    #[derive(Default, Debug)]
    struct JobLog {
        arrived: u32,
        placements: u32,
        starts: u32,
        ckpt_started: u32,
        ckpt_done: u32,
        completed: u32,
        events_after_completion: u32,
    }
    let mut logs: HashMap<u64, JobLog> = HashMap::new();
    for ev in out.trace.events() {
        let Some(job) = ev.kind.job() else { continue };
        let log = logs.entry(job.0).or_default();
        if log.completed > 0 {
            log.events_after_completion += 1;
        }
        match ev.kind {
            TraceKind::JobArrived { .. } => log.arrived += 1,
            TraceKind::PlacementStarted { .. } => {
                assert_eq!(log.arrived, 1, "placement before arrival for {job:?}");
                log.placements += 1;
            }
            TraceKind::JobStarted { .. } => {
                assert!(log.placements >= 1, "start before placement for {job:?}");
                log.starts += 1;
            }
            TraceKind::CheckpointStarted { .. } => log.ckpt_started += 1,
            TraceKind::CheckpointCompleted { .. } => log.ckpt_done += 1,
            TraceKind::JobCompleted { .. } => log.completed += 1,
            _ => {}
        }
    }
    assert!(!logs.is_empty());
    for (id, log) in &logs {
        assert_eq!(log.arrived, 1, "job {id} arrival count");
        assert!(log.completed <= 1, "job {id} completed twice");
        assert_eq!(
            log.ckpt_started, log.ckpt_done,
            "job {id}: checkpoint transfer lost"
        );
        assert_eq!(
            log.events_after_completion, 0,
            "job {id} had events after completion"
        );
    }
}

/// Per-station occupancy replay: a machine never hosts two foreign jobs at
/// once, and every occupancy interval is closed by exactly one of
/// completion / checkpoint / kill.
#[test]
fn stations_host_at_most_one_foreign_job() {
    let out = stormy_output(77);
    let mut resident: HashMap<NodeId, u64> = HashMap::new();
    for ev in out.trace.events() {
        match ev.kind {
            TraceKind::PlacementStarted { job, target } => {
                if let Some(&other) = resident.get(&target) {
                    panic!(
                        "{target} received {job:?} while hosting job {other} at {}",
                        ev.at
                    );
                }
                resident.insert(target, job.0);
            }
            TraceKind::JobCompleted { job, on } => {
                assert_eq!(resident.remove(&on), Some(job.0), "completion on wrong station");
            }
            TraceKind::CheckpointCompleted { job, from, .. } => {
                assert_eq!(resident.remove(&from), Some(job.0), "checkpoint from wrong station");
            }
            TraceKind::JobKilled { job, on } => {
                assert_eq!(resident.remove(&on), Some(job.0), "kill on wrong station");
            }
            _ => {}
        }
    }
    // Whatever remains resident at the horizon must match unfinished jobs.
    for (station, job) in resident {
        let j = &out.jobs[job as usize];
        assert!(
            j.state.remote_station() == Some(station),
            "job {job} left dangling at {station}"
        );
    }
}

/// Owner activity traces alternate per station (no double-active or
/// double-idle transitions).
#[test]
fn owner_transitions_alternate() {
    let out = stormy_output(3);
    let mut state: HashMap<NodeId, bool> = HashMap::new();
    for ev in out.trace.events() {
        match ev.kind {
            TraceKind::OwnerActive { station } => {
                let was = state.insert(station, true);
                assert_ne!(was, Some(true), "{station} went active twice");
            }
            TraceKind::OwnerIdle { station } => {
                let was = state.insert(station, false);
                assert_ne!(was, Some(false), "{station} went idle twice");
            }
            _ => {}
        }
    }
}

/// The §4 placement throttle holds globally: placement starts never bunch
/// tighter than the poll interval.
#[test]
fn placement_throttle_holds_at_month_scale() {
    let out = stormy_output(1988);
    let starts: Vec<_> = out
        .trace
        .filtered(|k| matches!(k, TraceKind::PlacementStarted { .. }))
        .map(|e| e.at)
        .collect();
    assert!(starts.len() > 1_000, "month run places thousands of jobs");
    for w in starts.windows(2) {
        assert!(
            w[1].since(w[0]) >= SimDuration::from_minutes(2),
            "placements at {} and {} violate the throttle",
            w[0],
            w[1]
        );
    }
}

/// Coordinator polls tick at the configured cadence for the whole run.
#[test]
fn coordinator_polls_are_periodic() {
    let out = stormy_output(5);
    let polls: Vec<_> = out
        .trace
        .filtered(|k| matches!(k, TraceKind::CoordinatorPolled { .. }))
        .map(|e| e.at)
        .collect();
    assert_eq!(polls.len() as u64, out.totals.polls);
    for w in polls.windows(2) {
        assert_eq!(w[1].since(w[0]), SimDuration::from_minutes(2));
    }
}
