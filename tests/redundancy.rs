//! Differential battery for the redundancy policy family.
//!
//! Speculative replication spends idle machines on purpose, so the thing
//! to test is not "does it help" in the abstract but *conservation*: every
//! spawned copy must be accounted for — cancelled (with its progress
//! priced into the wasted-work ledger) or converted into the job's
//! completion — no matter what chaos does to the cluster around it. Three
//! layers:
//!
//! 1. A property test folds the raw trace by hand (independently of the
//!    [`AuditSink`]) and checks spawn/cancel/win conservation and the
//!    wasted-work sum against [`Totals`](condor::core::cluster::Totals),
//!    with and without a generated fault schedule.
//! 2. The same runs stream through the auditor, whose own replica
//!    phase-machine must agree with both the hand fold and the simulator.
//! 3. A 25-seed coordinator-outage sweep runs the differential: identical
//!    workloads with replication off vs `k = 2`, every run audit-clean,
//!    and the mean wait ratio must *improve* with replication on — the
//!    policy has to pay for itself under the regime it was built for.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use std::collections::HashSet;

use condor::core::chaos::{ChaosEntry, Fault};
use condor::core::cluster::RunOutput;
use condor::metrics::replicate::par_map;
use condor::metrics::summary::summarize;
use condor::prelude::*;
use condor_workload::scenarios::Scenario;
use proptest::prelude::*;

/// A 6-hour coordinator outage every 12 hours — the §4 "central machine
/// crashes" scenario, recurring. The regime replication targets: inside
/// each window no placements happen, so a job evicted mid-outage waits
/// for recovery unless a replica on a surviving idle station finishes it.
fn outage_schedule(horizon: SimDuration) -> ChaosSchedule {
    let mut entries = Vec::new();
    let mut at = SimTime::ZERO + SimDuration::from_hours(6);
    let end = SimTime::ZERO + horizon;
    while at < end {
        entries.push(ChaosEntry {
            at,
            fault: Fault::CoordinatorOutage { duration: SimDuration::from_hours(6) },
        });
        at += SimDuration::from_hours(12);
    }
    ChaosSchedule { entries }
}

/// Runs the one-week scenario under `policy` (and optional chaos) with an
/// attached auditor; returns the run plus the audit verdict.
fn audited_run(
    scenario: Scenario,
    policy: PolicyKind,
    chaos: Option<ChaosSchedule>,
) -> (RunOutput, Vec<String>, (u64, u64, u64)) {
    let mut config = scenario.config;
    config.policy = policy;
    config.chaos = chaos.map(ChaosConfig::new);
    // Chaos perturbs the poll grid; pin the audited cadence rather than
    // letting the sink infer it from the first (possibly stretched) gap.
    let audit = SharedSink::new(
        AuditSink::new().with_poll_interval(config.costs.coordinator_poll_interval),
    );
    let out = Run::new(config)
        .specs(scenario.jobs)
        .horizon(scenario.horizon)
        .sink(Box::new(audit.clone()))
        .execute();
    let violations = audit.with(|a| a.violations().iter().map(|v| v.to_string()).collect());
    let audited = audit.with(|a| a.replica_totals());
    (out, violations, audited)
}

/// Hand-rolled replica conservation fold over the raw trace — deliberately
/// independent of the [`AuditSink`] so the two implementations check each
/// other. Returns `(spawned, cancelled, wasted_ms)`.
fn fold_replica_ledger(out: &RunOutput) -> (u64, u64, u64) {
    let mut live: HashSet<(JobId, NodeId)> = HashSet::new();
    let (mut spawned, mut cancelled, mut wasted_ms, mut wins) = (0u64, 0u64, 0u64, 0u64);
    for ev in out.trace.events() {
        match ev.kind {
            TraceKind::ReplicaSpawned { job, on } => {
                assert!(live.insert((job, on)), "second live replica of {job:?} on {on}");
                spawned += 1;
            }
            TraceKind::ReplicaCancelled { job, on, wasted_ms: w } => {
                assert!(live.remove(&(job, on)), "cancel without a spawn: {job:?} on {on}");
                cancelled += 1;
                wasted_ms += w;
            }
            TraceKind::JobCompleted { job, on }
                // A completion on a station holding a live replica of the
                // same job is that replica winning the race.
                if live.remove(&(job, on)) => {
                    wins += 1;
                }
            _ => {}
        }
    }
    assert!(live.is_empty(), "replicas leaked past the end of the run: {live:?}");
    assert_eq!(
        spawned,
        cancelled + wins,
        "every spawn must end in exactly one cancellation or one completion"
    );
    (spawned, cancelled, wasted_ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Replica conservation, calm and under fire: for any workload seed,
    /// the hand fold, the auditor, and the simulator's own ledger must
    /// agree on spawns, cancellations, and wasted work — with chaos
    /// injecting owner churn, poll loss, partitions, and outages on top.
    #[test]
    fn replica_ledger_is_conserved_with_and_without_chaos(
        seed in 0u64..1_000,
        chaos_seed in 0u64..1_000,
    ) {
        let policy = PolicyKind::Redundant(RedundancyConfig::default());
        let horizon = one_week(seed).horizon;
        let schedules = [
            None,
            Some(ChaosSchedule::generate(
                chaos_seed,
                &ChaosGen { horizon, stations: 23, faults: 12 },
            )),
        ];
        for chaos in schedules {
            let under_chaos = chaos.is_some();
            let (out, violations, audited) =
                audited_run(one_week(seed), policy, chaos);
            prop_assert!(
                violations.is_empty(),
                "audit violations (seed {seed}, chaos {under_chaos}): {violations:?}"
            );
            let folded = fold_replica_ledger(&out);
            let ledger = (
                out.totals.replicas_spawned,
                out.totals.replicas_cancelled,
                out.totals.wasted_replica_work,
            );
            prop_assert_eq!(
                folded, ledger,
                "trace fold vs simulator ledger (seed {}, chaos {})", seed, under_chaos
            );
            prop_assert_eq!(
                audited, ledger,
                "auditor vs simulator ledger (seed {}, chaos {})", seed, under_chaos
            );
        }
    }
}

/// The battery must actually exercise the machinery: at the pinned seed,
/// the full policy (replication + opportunistic checkpointing) under a
/// mixed fault schedule spawns real replicas, wins some races, and prices
/// the losers into the wasted-work ledger.
#[test]
fn the_pinned_seed_spawns_wins_and_prices_replicas() {
    let scenario = one_week(1988);
    let horizon = scenario.horizon;
    let policy = PolicyKind::Redundant(RedundancyConfig {
        checkpointing: CkptTiming::Opportunistic {
            check_every: SimDuration::from_minutes(10),
            hazard_threshold: 1.0,
        },
        ..RedundancyConfig::default()
    });
    let chaos = ChaosSchedule::generate(
        1988,
        &ChaosGen { horizon, stations: 23, faults: 14 },
    );
    let (out, violations, audited) = audited_run(scenario, policy, Some(chaos));
    assert!(violations.is_empty(), "audit violations: {violations:?}");
    let (spawned, cancelled, wasted_ms) = fold_replica_ledger(&out);
    assert!(spawned > 0, "the pinned configuration never replicated");
    assert!(cancelled <= spawned);
    assert_eq!(audited, (spawned, cancelled, wasted_ms));
    if cancelled > 0 {
        assert!(
            wasted_ms > 0,
            "cancelled replicas accrued work, so the waste ledger cannot be empty"
        );
    }
}

/// The differential: 25 workload seeds through the coordinator-outage
/// regime, replication off vs `k = 2`, paired per seed. Every run must be
/// audit-clean, plain Up-Down must never replicate, and the sweep mean
/// wait ratio must improve with replication on — speculation has to buy
/// back more latency than its queue pressure costs.
#[test]
fn outage_sweep_replication_improves_mean_wait_ratio() {
    const SEEDS: u64 = 25;
    let horizon = one_week(1988).horizon;
    let grid: Vec<(u64, bool)> = (0..SEEDS)
        .flat_map(|i| [(1988 + i, false), (1988 + i, true)])
        .collect();
    let waits: Vec<f64> = par_map(&grid, |&(seed, redundant)| {
        let policy = if redundant {
            PolicyKind::Redundant(RedundancyConfig::default())
        } else {
            PolicyKind::Redundant(RedundancyConfig::off())
        };
        let (out, violations, _) =
            audited_run(one_week(seed), policy, Some(outage_schedule(horizon)));
        assert!(violations.is_empty(), "seed {seed} violations: {violations:?}");
        if !redundant {
            assert_eq!(
                out.totals.replicas_spawned, 0,
                "replication-off must never spawn (seed {seed})"
            );
        }
        summarize(&out).mean_wait_ratio
    });
    let (mut plain, mut redundant) = (0.0, 0.0);
    for pair in waits.chunks(2) {
        plain += pair[0];
        redundant += pair[1];
    }
    plain /= SEEDS as f64;
    redundant /= SEEDS as f64;
    assert!(
        redundant < plain,
        "replication must improve the outage-regime mean wait ratio \
         (off {plain:.3} vs k=2 {redundant:.3})"
    );
}
