//! Acceptance: streaming telemetry replaces the buffered trace.
//!
//! The ISSUE's bar: a default-config 23-station simulated month run with
//! `record_trace: false` must produce a populated [`Telemetry`] whose
//! per-kind event counts match the legacy trace of an identical seeded
//! run that *did* record.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::prelude::*;

#[test]
fn paper_month_telemetry_matches_the_trace() {
    // Reference run: the default buffered trace.
    let traced = paper_month(1988);
    let reference = run_cluster(traced.config, traced.jobs, traced.horizon);
    assert!(!reference.trace.is_empty(), "reference run must record");

    // Trace-free run of the identical scenario.
    let mut dark = paper_month(1988);
    dark.config.record_trace = false;
    let out = run_cluster(dark.config, dark.jobs, dark.horizon);
    assert_eq!(out.trace.len(), 0, "record_trace: false buffers nothing");

    // Event totals and per-kind counts agree exactly.
    let tel = &out.telemetry;
    assert_eq!(tel.events_total as usize, reference.trace.len());
    let mut counts = [0u64; TraceKind::COUNT];
    for ev in reference.trace.events() {
        counts[ev.kind.index()] += 1;
    }
    assert_eq!(tel.counts, counts);

    // The month produced real work, so every digest is populated.
    assert!(tel.queue_wait_ms.count() > 0, "queue waits observed");
    assert!(tel.remote_burst_ms.count() > 0, "remote bursts observed");
    assert!(tel.checkpoint_bytes.count() > 0, "checkpoints observed");
    assert!(tel.bus_backlog_ms.samples() > 0, "bus gauge sampled");
    assert!(tel.updown_index.samples() > 0, "up-down gauge sampled");
    assert!(tel.first_event.is_some() && tel.last_event.is_some());
    assert_eq!(tel.finished_at, out.horizon);

    // And the traced run's own telemetry is identical in counts — the
    // sink sees the same stream whether or not the trace buffers it.
    assert_eq!(reference.telemetry.counts, tel.counts);
    assert_eq!(reference.telemetry.events_total, tel.events_total);
}

#[test]
fn attached_sinks_and_report_cover_a_dark_run() {
    let mut scenario = paper_month(7);
    scenario.config.record_trace = false;
    let events = SharedSink::new(VecSink::new());
    let tail = SharedSink::new(RingSink::new(32));
    let out = run_cluster_with_sinks(
        scenario.config,
        scenario.jobs,
        SimDuration::from_days(3),
        vec![Box::new(events.clone()), Box::new(tail.clone())],
    );
    let n = events.with(|s| s.len()) as u64;
    assert_eq!(n, out.telemetry.events_total);
    tail.with(|r| {
        assert_eq!(r.seen(), n);
        assert_eq!(r.len(), 32.min(n as usize));
    });
    // The rendered report mentions whatever actually happened.
    let text = render_telemetry(&out.telemetry);
    assert!(text.contains("coordinator_polled"), "{text}");
    assert!(text.contains("bus backlog"), "{text}");
}
