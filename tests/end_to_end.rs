//! End-to-end integration tests over the full stack: workload generation →
//! cluster simulation → metrics, on the paper's own scenarios.

#![allow(deprecated)] // tests exercise the legacy run_cluster* wrappers

use condor::metrics::summary::{heavy_users, mean_leverage, mean_wait_ratio, summarize};
use condor::prelude::*;
use condor::workload::scenarios::{one_week, paper_month};
use condor::workload::trace::table1_rows;

/// The flagship: the paper-month scenario lands inside the paper's
/// measured envelope on every headline number.
#[test]
fn paper_month_reproduces_section3_numbers() {
    let scenario = paper_month(1988);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let s = summarize(&out);

    assert_eq!(s.jobs_submitted, 918, "Table 1 job count");
    assert_eq!(s.jobs_completed, 918, "everything finishes within the month");
    // Paper: 12438 available hours, 4771 consumed, ~75% availability,
    // ~25% local utilization, leverage ~1300. Allow ±15% envelopes.
    assert!(
        (10_500.0..=14_500.0).contains(&s.available_hours),
        "available hours {}",
        s.available_hours
    );
    assert!(
        (3_800.0..=5_500.0).contains(&s.consumed_hours),
        "consumed hours {}",
        s.consumed_hours
    );
    assert!((0.65..=0.85).contains(&s.availability), "availability {}", s.availability);
    assert!(
        (0.18..=0.32).contains(&s.local_utilization),
        "local utilization {}",
        s.local_utilization
    );
    assert!(
        (900.0..=1_800.0).contains(&s.mean_leverage),
        "mean leverage {}",
        s.mean_leverage
    );
    // Consumed capacity cannot exceed what was available.
    assert!(s.consumed_hours <= s.available_hours);
}

/// Fig. 4's fairness split: light users wait far less than the heavy user.
#[test]
fn light_users_wait_less_than_the_heavy_user() {
    let scenario = paper_month(1988);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let heavy = heavy_users(&out.jobs, 0.5);
    assert_eq!(heavy.len(), 1, "user A dominates demand");
    let light_wait = mean_wait_ratio(&out.jobs, |j| !heavy.contains(&j.spec.user)).unwrap();
    let heavy_wait = mean_wait_ratio(&out.jobs, |j| heavy.contains(&j.spec.user)).unwrap();
    assert!(
        heavy_wait > 2.0 * light_wait,
        "Up-Down shield: heavy {heavy_wait:.2} vs light {light_wait:.2}"
    );
}

/// Fig. 9's leverage ordering: longer jobs leverage higher; overall mean in
/// the paper's regime.
#[test]
fn leverage_grows_with_demand() {
    let scenario = paper_month(1988);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let short = mean_leverage(&out.jobs, |j| j.spec.demand.as_hours_f64() < 2.0).unwrap();
    let long = mean_leverage(&out.jobs, |j| j.spec.demand.as_hours_f64() >= 6.0).unwrap();
    assert!(long > 2.0 * short, "long {long:.0} vs short {short:.0}");
}

/// Fig. 8's shape: short jobs move more often per demand-hour.
#[test]
fn short_jobs_checkpoint_more_per_hour() {
    let scenario = paper_month(1988);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let rate = |lo: f64, hi: f64| {
        let jobs: Vec<_> = out
            .completed_jobs()
            .filter(|j| {
                let h = j.spec.demand.as_hours_f64();
                h >= lo && h < hi
            })
            .collect();
        jobs.iter().map(|j| j.checkpoint_rate_per_hour()).sum::<f64>() / jobs.len().max(1) as f64
    };
    let short = rate(0.0, 2.0);
    let long = rate(6.0, f64::INFINITY);
    assert!(short > long, "short {short:.2}/h vs long {long:.2}/h");
}

/// Table 1 regenerates from the workload generator.
#[test]
fn table1_counts_are_exact() {
    let rows = table1_rows(&paper_month(1988).jobs);
    let counts: Vec<usize> = rows.iter().map(|r| r.jobs).collect();
    assert_eq!(counts, vec![690, 138, 39, 40, 11]);
    assert!(rows[0].pct_demand > 80.0, "A's share {}", rows[0].pct_demand);
}

/// The week close-up shows the diurnal pattern of Fig. 6: weekday
/// afternoons busier than nights.
#[test]
fn week_shows_diurnal_local_activity() {
    let scenario = one_week(1988);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    let local = out.local_utilization_hourly();
    assert_eq!(local.len(), 168);
    let mut afternoons = Vec::new();
    let mut nights = Vec::new();
    for (h, &u) in local.iter().enumerate() {
        let (day, hour) = (h / 24, h % 24);
        if day < 5 {
            if (12..=16).contains(&hour) {
                afternoons.push(u);
            } else if !(8..=21).contains(&hour) {
                nights.push(u);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&afternoons) > mean(&nights) + 0.1,
        "afternoon {:.2} vs night {:.2}",
        mean(&afternoons),
        mean(&nights)
    );
}

/// Whole-pipeline determinism: scenario → simulation → summary is a pure
/// function of the seed.
#[test]
fn pipeline_is_deterministic() {
    let run = |seed| {
        let s = paper_month(seed);
        let out = run_cluster(s.config, s.jobs, s.horizon);
        let sum = summarize(&out);
        (
            out.totals,
            out.trace.len(),
            sum.consumed_hours.to_bits(),
            sum.mean_leverage.to_bits(),
        )
    };
    assert_eq!(run(1988), run(1988));
    assert_ne!(run(1988), run(1989));
}

/// Up-Down never loses work under the default (grace) strategy, even at
/// month scale with thousands of preemptions.
#[test]
fn no_work_is_ever_lost_under_grace() {
    let scenario = paper_month(2024);
    let out = run_cluster(scenario.config, scenario.jobs, scenario.horizon);
    assert!(out.totals.preemptions_owner > 100, "plenty of preemptions happened");
    for j in &out.jobs {
        assert_eq!(
            j.work_lost,
            SimDuration::ZERO,
            "job {} lost work under the grace strategy",
            j.spec.id
        );
    }
}
